"""``repro-sweep``: run declarative campaign parameter matrices.

::

    repro-sweep list
    repro-sweep describe --name diurnal-trio
    repro-sweep run --name diurnal-trio --quick --jobs 4 --out sweep-out
    repro-sweep run my-sweep.txt --jobs 2

Exit codes: ``0`` all runs succeeded and passed their SLOs, ``1`` a
run errored or failed SLOs (``--no-slo-gate`` keeps SLO failures
non-fatal), ``2`` bad usage / unreadable or unparseable spec.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from ..scenarios.dsl import ScenarioParseError
from .merge import render_sweep_table, write_sweep
from .runner import run_sweep
from .spec import NAMED_SWEEPS, SweepSpec, get_sweep, parse_sweep, sweep_names

__all__ = ["build_parser", "main"]


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    if args.name is not None:
        try:
            return get_sweep(args.name)
        except KeyError as exc:
            raise SystemExit(f"repro-sweep: {exc.args[0]}") from None
    if args.spec is None:
        raise SystemExit("repro-sweep: need a spec file or --name")
    path = Path(args.spec)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"repro-sweep: cannot read {path}: {exc}") from None
    try:
        return parse_sweep(text, path=str(path))
    except ScenarioParseError as exc:
        raise SystemExit(f"repro-sweep: {exc}") from None


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sweep_names():
        spec = get_sweep(name)
        axes = ", ".join(f"{k}×{len(v)}" for k, v in spec.axes.items())
        print(f"{name:<24} {len(spec):>3} runs  ({axes})")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if args.name is not None:
        print(NAMED_SWEEPS[args.name], end="")
    else:
        print(Path(args.spec).read_text(), end="")
    print()
    for run in spec.runs():
        print(f"  {run.run_id}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    out_dir = Path(args.out)

    def progress(summary: dict) -> None:
        if "error" in summary:
            status = f"ERROR {summary['error']}"
        else:
            status = "pass" if summary["slos_passed"] else "SLO FAIL"
        print(f"  [{summary['wall_s']:8.2f}s] {summary['run_id']}: {status}")

    print(f"sweep {spec.name}: {len(spec)} runs, jobs={args.jobs}")
    doc = run_sweep(
        spec, jobs=args.jobs, quick=args.quick, out_dir=out_dir, progress=progress
    )
    path = write_sweep(out_dir, doc)
    print()
    print(render_sweep_table(doc))
    print(f"\nwrote {path}")

    errored = [r for r in doc["runs"] if "error" in r]
    failed = [r for r in doc["runs"] if not r.get("slos_passed", True)]
    if errored:
        for r in errored:
            print(f"repro-sweep: run {r['run_id']} failed: {r['error']}", file=sys.stderr)
        return 1
    if failed and not args.no_slo_gate:
        for r in failed:
            for rule in r.get("slo_failures", []):
                print(f"repro-sweep: {r['run_id']}: SLO FAIL {rule}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run campaign parameter matrices across a process pool.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="expand a sweep spec and run every point")
    p_run.add_argument("spec", nargs="?", default=None, help="sweep spec file")
    p_run.add_argument("--name", default=None, help="named sweep instead of a file")
    p_run.add_argument("--jobs", type=int, default=1, help="worker processes (default: 1)")
    p_run.add_argument("--quick", action="store_true", help="quick campaign durations")
    p_run.add_argument("--out", default="sweep-out", help="output directory")
    p_run.add_argument(
        "--no-slo-gate",
        action="store_true",
        help="record SLO verdicts but do not fail the exit code on them",
    )
    p_run.set_defaults(func=_cmd_run)

    p_desc = sub.add_parser("describe", help="print a spec and its expanded run ids")
    p_desc.add_argument("spec", nargs="?", default=None)
    p_desc.add_argument("--name", default=None)
    p_desc.set_defaults(func=_cmd_describe)

    p_list = sub.add_parser("list", help="list named sweeps")
    p_list.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
