"""The ``repro-sweep/1`` merged comparison document.

One sweep run produces one JSON document holding every matrix point's
metrics, SLO verdict and wall-clock next to the sweep's own timing —
the cross-run comparison artifact ``repro-dash --sweep`` renders and CI
archives.  The shape mirrors ``repro-bench/1``: versioned ``schema``
field, validated on write *and* read, so a corrupt or foreign file
fails loudly at the boundary.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "SWEEP_SCHEMA",
    "make_sweep_doc",
    "read_sweep",
    "render_sweep_table",
    "validate_sweep",
    "write_sweep",
]

SWEEP_SCHEMA = "repro-sweep/1"

_RUN_REQUIRED = ("run_id", "params", "wall_s")


def validate_sweep(doc: dict) -> dict:
    """Validate a ``repro-sweep/1`` document; returns it for chaining."""
    if not isinstance(doc, dict):
        raise ValueError(f"sweep doc must be an object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != SWEEP_SCHEMA:
        raise ValueError(f"unsupported sweep schema {schema!r} (want {SWEEP_SCHEMA!r})")
    for key in ("name", "quick", "jobs", "axes", "runs", "serial_wall_s", "wall_s"):
        if key not in doc:
            raise ValueError(f"sweep doc missing {key!r}")
    if not isinstance(doc["axes"], dict):
        raise ValueError("sweep axes must be an object")
    if not isinstance(doc["runs"], list) or not doc["runs"]:
        raise ValueError("sweep doc needs a non-empty runs list")
    seen: set[str] = set()
    for run in doc["runs"]:
        for key in _RUN_REQUIRED:
            if key not in run:
                raise ValueError(f"sweep run missing {key!r}: {run!r}")
        if "error" not in run and "metrics" not in run:
            raise ValueError(f"sweep run needs metrics or an error: {run['run_id']!r}")
        if run["run_id"] in seen:
            raise ValueError(f"duplicate run_id {run['run_id']!r}")
        seen.add(run["run_id"])
    return doc


def make_sweep_doc(
    name: str,
    *,
    quick: bool,
    jobs: int,
    axes: dict[str, list[str]],
    runs: list[dict],
    wall_s: float,
) -> dict:
    """Assemble (and validate) the merged document.

    ``serial_wall_s`` is the sum of the per-run wall clocks measured
    inside the workers — what the same matrix would have cost end to
    end on one core, recorded in the same job so the parallel win is a
    self-contained assertion.
    """
    return validate_sweep(
        {
            "schema": SWEEP_SCHEMA,
            "name": name,
            "quick": bool(quick),
            "jobs": int(jobs),
            "axes": axes,
            "runs": runs,
            "serial_wall_s": round(sum(r.get("wall_s", 0.0) for r in runs), 6),
            "wall_s": round(wall_s, 6),
        }
    )


def write_sweep(out_dir: Path, doc: dict) -> Path:
    """Write ``SWEEP_<name>.json``; returns the path."""
    validate_sweep(doc)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"SWEEP_{doc['name']}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read_sweep(path: Path) -> dict:
    """Load + validate; raises ValueError on bad JSON or schema."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    return validate_sweep(doc)


#: (column header, metric name, format) for the cross-run table.
_TABLE_COLUMNS = [
    ("achieved", "scenario.achieved_ratio", "{:.4f}"),
    ("degr s", "campaign.degradation_node_s", "{:.1f}"),
    ("spread%", "campaign.spread_pct", "{:.1f}"),
    ("migs", "campaign.migrations", "{:.0f}"),
    ("failed", "campaign.migrations_failed", "{:.0f}"),
]


def render_sweep_table(doc: dict) -> str:
    """The cross-run comparison table (the ``repro-dash`` sweep panel)."""
    from ..analysis.report import render_table

    rows = []
    for run in doc["runs"]:
        row: list = [run["run_id"]]
        if "error" in run:
            row += ["ERROR"] * len(_TABLE_COLUMNS) + ["-", f"{run['wall_s']:.2f}"]
            rows.append(row)
            continue
        metrics = run.get("metrics", {})
        for _, name, fmt in _TABLE_COLUMNS:
            value = metrics.get(name)
            row.append("-" if value is None else fmt.format(value))
        row.append("pass" if run.get("slos_passed", True) else "FAIL")
        row.append(f"{run['wall_s']:.2f}")
        rows.append(row)
    title = (
        f"Sweep {doc['name']} (jobs {doc['jobs']}, "
        f"wall {doc['wall_s']:.2f}s vs serial {doc['serial_wall_s']:.2f}s)"
    )
    return render_table(
        ["run"] + [c[0] for c in _TABLE_COLUMNS] + ["slo", "wall s"],
        rows,
        title=title,
    )
