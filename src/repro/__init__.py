"""repro — a full-system reproduction of

    "An Efficient Process Live Migration Mechanism for Load Balanced
     Distributed Virtual Environments"
    (B. Gerofi, H. Fujita, Y. Ishikawa — IEEE CLUSTER 2010)

as a deterministic discrete-event simulation: a Linux-like kernel
substrate (memory management with dirty-bit tracking, netfilter,
jiffies), a migratable TCP/UDP stack, a BLCR-style checkpoint/restart
layer, the paper's live-migration mechanism with iterative / collective
/ incremental-collective socket migration, packet-loss prevention and
in-cluster address translation, the decentralized load-balancing
middleware, and the two evaluation workloads (an OpenArena-like FPS
server and the 10,000-client DVE simulation).

Quick start::

    from repro.cluster import build_cluster
    from repro.core import migrate_process
    from repro.testing import establish_clients

    cluster = build_cluster(n_nodes=2, with_db=False)
    node, dest = cluster.nodes
    proc = node.kernel.spawn_process("game_server")
    proc.address_space.mmap(256)
    establish_clients(cluster, node, proc, 27960, n_clients=8)
    report = cluster.env.run(until=migrate_process(node, dest, proc))
    print(report.summary())
"""

from . import (
    analysis,
    blcr,
    core,
    des,
    dve,
    faults,
    middleware,
    net,
    openarena,
    oskern,
    tcpip,
)
from .cluster import Cluster, ClusterConfig, build_cluster

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "build_cluster",
    "des",
    "net",
    "oskern",
    "tcpip",
    "blcr",
    "core",
    "faults",
    "middleware",
    "openarena",
    "dve",
    "analysis",
    "__version__",
]
