"""The Figure-5 experiment: a 15-minute DVE simulation on five nodes,
with and without the load-balancing middleware.

10,000 clients, 100 zones (10x10 grid, Fig. 5a), 20 zone-server
processes per node, one MySQL session per zone server.  Clients drift
from the middle regions to the up-left and down-right corners, loading
node1 and node5.  The scenario records per-node CPU utilisation
(Fig. 5e/5f) and per-node zone-server counts (Fig. 5d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster, ClusterConfig
from ..core import LiveMigrationConfig
from ..des import SeriesBundle
from ..middleware import (
    Conductor,
    ConductorConfig,
    MigrationEvent,
    PolicyConfig,
    install_conductor,
)
from .client import ClientPopulation, MovementConfig
from .mysql import MySQLServer
from .space import ZoneGrid
from .zoneserver import ZoneServer, ZoneServerConfig

__all__ = ["DVEScenarioConfig", "DVEResult", "DVEScenario"]


@dataclass
class DVEScenarioConfig:
    """Everything Figure 5 depends on, with the paper's defaults."""

    n_nodes: int = 5
    grid_cols: int = 10
    grid_rows: int = 10
    n_clients: int = 10_000
    #: "The overall experiment takes approximately 15 minutes."
    duration: float = 900.0
    load_balancing: bool = True
    seed: int = 42
    movement: MovementConfig = field(default_factory=MovementConfig)
    zone_server: ZoneServerConfig = field(default_factory=ZoneServerConfig)
    #: Population/demand refresh and series sampling periods.
    population_interval: float = 1.0
    sample_interval: float = 2.0
    #: Whether zone servers hold real client TCP connections (the
    #: count is zone_server.n_client_conns) and MySQL sessions.
    with_connections: bool = True
    with_db: bool = True
    #: Direct zone-server <-> zone-server boundary links (east
    #: neighbours), migratable on both ends (Section VI-C future work).
    with_neighbor_links: bool = False
    conductor: Optional[ConductorConfig] = None

    def make_conductor_config(self) -> ConductorConfig:
        if self.conductor is not None:
            return self.conductor
        return ConductorConfig(
            policies=PolicyConfig(
                critical_threshold=90.0,
                imbalance_threshold=6.0,
                receiver_margin=2.0,
            ),
            check_interval=1.5,
            calm_down=8.0,
            migration=LiveMigrationConfig(initial_round_timeout=0.16),
        )


@dataclass
class DVEResult:
    """Everything the Figure-5 panels plot."""

    #: Per-node CPU utilisation over time (Fig. 5e / 5f).
    cpu: SeriesBundle
    #: Per-node zone-server process counts over time (Fig. 5d).
    procs: SeriesBundle
    #: All completed migrations, cluster-wide.
    migrations: list[MigrationEvent]
    initial_zone_counts: list[list[int]]
    final_zone_counts: list[list[int]]
    load_balancing: bool

    def final_loads(self) -> dict[str, float]:
        _start, end = self.cpu.common_window()
        return {name: self.cpu[name].value_at(end) for name in self.cpu.names()}

    def final_proc_counts(self) -> dict[str, int]:
        _start, end = self.procs.common_window()
        return {
            name: int(self.procs[name].value_at(end)) for name in self.procs.names()
        }

    def max_spread(self, after: float = 0.0) -> float:
        """Worst max-min CPU spread across nodes after time ``after``."""
        start, end = self.cpu.common_window()
        times = [t for t in self.cpu[self.cpu.names()[0]].times if after <= t <= end]
        return max(self.cpu.spread_at(t) for t in times)


class DVEScenario:
    """Builds and runs the Figure-5 simulation."""

    def __init__(self, config: Optional[DVEScenarioConfig] = None) -> None:
        self.config = config or DVEScenarioConfig()
        cfg = self.config
        self.grid = ZoneGrid(cfg.grid_cols, cfg.grid_rows, cfg.n_nodes)
        self.cluster = Cluster(
            ClusterConfig(n_nodes=cfg.n_nodes, with_db=cfg.with_db, master_seed=cfg.seed)
        )
        self.env = self.cluster.env
        self.population = ClientPopulation(
            self.grid,
            cfg.n_clients,
            self.cluster.rng.stream("dve-clients"),
            cfg.movement,
        )
        self.db: Optional[MySQLServer] = (
            MySQLServer(self.cluster.db) if cfg.with_db else None
        )
        self.zone_servers: list[ZoneServer] = []
        self.conductors: list[Conductor] = []
        self._built = False

    # -- construction -----------------------------------------------------------
    def build(self) -> None:
        """Create zone servers (with their connections) and conductors."""
        if self._built:
            raise RuntimeError("scenario already built")
        self._built = True
        cfg = self.config

        counts = self.population.zone_counts()
        for zone in self.grid.zones:
            node = self.cluster.nodes[self.grid.initial_node_of(zone)]
            zs = ZoneServer(self.cluster, node, zone, db=self.db, config=cfg.zone_server)
            zs.population = int(counts[zone.row, zone.col])
            if cfg.with_connections:
                zs.connect_clients()
            if self.db is not None:
                zs.connect_db()
            if cfg.with_neighbor_links:
                zs.listen_neighbors()
            zs.start()
            self.zone_servers.append(zs)

        if cfg.with_neighbor_links:
            by_zone = {zs.zone.zone_id: zs for zs in self.zone_servers}
            for zs in self.zone_servers:
                if zs.zone.col + 1 < self.grid.cols:
                    east = by_zone[zs.zone.zone_id + 1]
                    zs.connect_neighbor(east)

        if cfg.load_balancing:
            scan = [n.local_ip for n in self.cluster.nodes]
            ccfg = cfg.make_conductor_config()
            for node in self.cluster.nodes:
                cond = install_conductor(
                    node, scan, self.cluster.node_by_local_ip, ccfg
                )
                self.conductors.append(cond)
            for zs in self.zone_servers:
                node = zs.current_node()
                node.daemons["conductor"].manage(zs.proc)

    # -- the run -----------------------------------------------------------------
    def run(self) -> DVEResult:
        if not self._built:
            self.build()
        cfg = self.config
        cpu = SeriesBundle()
        procs = SeriesBundle()
        initial_counts = self.population.zone_counts().tolist()
        t_start = self.env.now  # series are recorded relative to this
        t_end = t_start + cfg.duration

        def population_loop():
            while self.env.now < t_end:
                yield self.env.timeout(cfg.population_interval)
                self.population.step(cfg.population_interval)
                counts = self.population.zone_counts()
                for zs in self.zone_servers:
                    zs.set_population(int(counts[zs.zone.row, zs.zone.col]))

        def sampler_loop():
            while self.env.now < t_end:
                now = self.env.now - t_start
                per_node = {n.name: 0 for n in self.cluster.nodes}
                for zs in self.zone_servers:
                    per_node[zs.current_node().name] += 1
                for node in self.cluster.nodes:
                    cpu.record(node.name, now, node.kernel.cpu.utilization())
                    procs.record(node.name, now, per_node[node.name])
                yield self.env.timeout(cfg.sample_interval)

        self.env.process(population_loop(), name="dve-population")
        self.env.process(sampler_loop(), name="dve-sampler")
        self.env.run(until=t_end)

        from dataclasses import replace as dc_replace

        migrations: list[MigrationEvent] = []
        for cond in self.conductors:
            migrations.extend(
                dc_replace(e, time=e.time - t_start) for e in cond.events
            )
        migrations.sort(key=lambda e: e.time)

        return DVEResult(
            cpu=cpu,
            procs=procs,
            migrations=migrations,
            initial_zone_counts=initial_counts,
            final_zone_counts=self.population.zone_counts().tolist(),
            load_balancing=cfg.load_balancing,
        )
