"""DVE simulation workload (Section VI-C, Figure 5)."""

from .client import ClientPopulation, MovementConfig
from .mysql import MYSQL_PORT, MySQLServer
from .scenario import DVEResult, DVEScenario, DVEScenarioConfig
from .space import Zone, ZoneGrid
from .zoneserver import ZoneServer, ZoneServerConfig

__all__ = [
    "Zone",
    "ZoneGrid",
    "MovementConfig",
    "ClientPopulation",
    "MySQLServer",
    "MYSQL_PORT",
    "ZoneServer",
    "ZoneServerConfig",
    "DVEScenario",
    "DVEScenarioConfig",
    "DVEResult",
]
