"""The virtual space: a 10x10 zone grid partitioned across server nodes.

Figure 5a: one hundred zones in a ten-by-ten grid; each of the five DVE
server nodes is initially assigned 20 zones (two grid rows), so 20 zone
server processes run on every node.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Zone", "ZoneGrid"]


@dataclass(frozen=True)
class Zone:
    """One cell of the virtual-space grid."""

    zone_id: int
    col: int
    row: int

    @property
    def center(self) -> tuple[float, float]:
        return (self.col + 0.5, self.row + 0.5)


class ZoneGrid:
    """The grid and its initial zone -> node assignment."""

    def __init__(self, cols: int = 10, rows: int = 10, n_nodes: int = 5) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("grid must be non-empty")
        if rows % n_nodes != 0:
            raise ValueError(
                f"{rows} rows cannot be split evenly across {n_nodes} nodes"
            )
        self.cols = cols
        self.rows = rows
        self.n_nodes = n_nodes
        self.zones = [
            Zone(zone_id=row * cols + col, col=col, row=row)
            for row in range(rows)
            for col in range(cols)
        ]

    def __len__(self) -> int:
        return len(self.zones)

    def zone_at(self, col: int, row: int) -> Zone:
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"({col}, {row}) outside the grid")
        return self.zones[row * self.cols + col]

    def zone_of_position(self, x: float, y: float) -> Zone:
        """The zone containing continuous position (x, y); positions are
        clamped to the world boundary."""
        col = min(self.cols - 1, max(0, int(x)))
        row = min(self.rows - 1, max(0, int(y)))
        return self.zone_at(col, row)

    def initial_node_of(self, zone: Zone) -> int:
        """Index of the node initially responsible for ``zone``
        (contiguous row bands, Figure 5a)."""
        rows_per_node = self.rows // self.n_nodes
        return zone.row // rows_per_node

    def zones_of_node(self, node_index: int) -> list[Zone]:
        return [z for z in self.zones if self.initial_node_of(z) == node_index]

    @property
    def zones_per_node(self) -> int:
        return len(self.zones) // self.n_nodes
