"""A MySQL-like database server on the cluster-local network.

Zone servers each hold a TCP session to it and repeatedly update the
persistent state of the virtual world (Section VI-C).  The DB host runs
``transd`` so sessions survive zone-server migrations without the DB
noticing (Section III-C).
"""

from __future__ import annotations

from ..core import install_transd
from ..oskern.node import Host
from ..tcpip import EOF, TCPSocket

__all__ = ["MySQLServer", "MYSQL_PORT"]

MYSQL_PORT = 3306


class MySQLServer:
    """Accepts sessions and answers every query with a result set."""

    def __init__(self, host: Host, result_bytes: int = 320) -> None:
        self.host = host
        self.env = host.env
        self.result_bytes = result_bytes
        self.proc = host.kernel.spawn_process("mysqld")
        self.listener = host.stack.tcp_socket(self.proc)
        self.listener.bind(MYSQL_PORT, ip=host.local_ip)
        self.listener.listen()
        self.transd = install_transd(host)
        self.sessions: list[TCPSocket] = []
        self.queries_served = 0
        self.env.process(self._accept_loop(), name="mysqld-accept")

    def _accept_loop(self):
        while True:
            session = yield self.listener.accept()
            self.sessions.append(session)
            self.env.process(self._session_loop(session), name="mysqld-session")

    def _session_loop(self, session: TCPSocket):
        while True:
            skb = yield session.recv()
            if skb.payload is EOF:
                self.sessions.remove(session)
                return
            self.queries_served += 1
            session.send(("result", self.queries_served), self.result_bytes)

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)
