"""Zone-server processes (Section VI-C).

Each zone server manages one partition of the virtual space.  It runs
the *real-time loop* — continuously processing client events, governing
interactions and responding with state updates at ~20 messages/second of
256 bytes — maintains client TCP connections and a MySQL session to the
local database server, and its CPU consumption grows proportionally with
the number of clients present in the zone.

Two traffic fidelities:

- ``packet`` — the full 20 Hz update traffic on every client connection;
  used by the freeze-time sweeps (Fig. 5b/5c) over seconds-long windows;
- ``fluid`` — client-update traffic is suppressed and only its CPU cost
  is modelled, while DB queries and memory dirtying stay real; used by
  the 15-minute load-balancing runs (Fig. 5d/e/f), where packet-level
  update traffic for 10,000 clients would add nothing to the measured
  quantity (per-node CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import Cluster
from ..net import Endpoint
from ..oskern.node import Host
from ..tcpip import TCPSocket
from .mysql import MYSQL_PORT, MySQLServer
from .space import Zone

__all__ = ["ZoneServerConfig", "ZoneServer"]


@dataclass(frozen=True)
class ZoneServerConfig:
    """Zone-server knobs, calibrated to the Section VI-C description."""

    #: Real-time loop rate (Quake III default) and update size [22,23].
    update_hz: float = 20.0
    update_bytes: int = 256
    #: Process memory footprint (pages).
    memory_pages: int = 300
    #: Pages dirtied per second by the real-time loop.
    dirty_pages_per_second: int = 60
    #: CPU demand (fraction of a core): base + per-client.
    cpu_base: float = 0.048
    cpu_per_client: float = 0.0003
    #: Interval between MySQL world-state updates (seconds).
    db_query_interval: float = 5.0
    db_query_bytes: int = 180
    #: Number of real client TCP connections to hold.
    n_client_conns: int = 4
    #: "packet" (full update traffic) or "fluid" (CPU-only updates).
    traffic_mode: str = "fluid"
    #: Base TCP port; zone servers listen on port_base + zone_id.
    port_base: int = 30000
    #: Interval between boundary-sync messages to the east neighbour.
    neighbor_sync_interval: float = 2.0
    neighbor_sync_bytes: int = 96


class ZoneServer:
    """One migratable zone-server process."""

    def __init__(
        self,
        cluster: Cluster,
        node: Host,
        zone: Zone,
        db: Optional[MySQLServer] = None,
        config: Optional[ZoneServerConfig] = None,
    ) -> None:
        if config and config.traffic_mode not in ("fluid", "packet"):
            raise ValueError(f"unknown traffic mode {config.traffic_mode!r}")
        self.cluster = cluster
        self.env = cluster.env
        self.zone = zone
        self.config = config or ZoneServerConfig()
        self.proc = node.kernel.spawn_process(f"zone_serv{zone.zone_id}")
        self._state = self.proc.address_space.mmap(
            self.config.memory_pages, tag="world-state"
        )
        self.port = self.config.port_base + zone.zone_id
        self.listener: Optional[TCPSocket] = None
        self.client_conns: list[TCPSocket] = []
        self.db_session: Optional[TCPSocket] = None
        #: Direct connection to the east neighbour zone server (Section
        #: VI-C future work: in-cluster zone-server <-> zone-server
        #: links, migratable on both ends).
        self.neighbor_sock: Optional[TCPSocket] = None
        self._neighbor_listener: Optional[TCPSocket] = None
        self.neighbor_msgs_sent = 0
        self.neighbor_msgs_received = 0
        self.population = 0
        self.updates_sent = 0
        self.db_replies = 0
        self._db = db
        self._started = False

    # -- connection setup ----------------------------------------------------
    def connect_clients(self, settle: float = 0.4) -> None:
        """Establish the configured number of real client connections
        through the broadcast router."""
        from ..testing import establish_clients

        node = self.current_node()
        self.listener, children, _ = establish_clients(
            self.cluster, node, self.proc, self.port,
            self.config.n_client_conns, settle=settle,
        )
        self.client_conns = children

    def connect_db(self, settle: float = 0.1) -> None:
        """Open the MySQL session on the local network."""
        if self._db is None:
            raise RuntimeError("no database server configured")
        sock = self.current_node().stack.tcp_socket(self.proc)
        ev = sock.connect(Endpoint(self._db.host.local_ip, MYSQL_PORT))
        self.env.run(until=self.env.now + settle)
        if not ev.triggered:
            raise RuntimeError(f"zone_serv{self.zone.zone_id}: DB handshake incomplete")
        self.db_session = sock

    # -- neighbour links (zone server <-> zone server, Section VI-C) ---------
    NEIGHBOR_PORT_BASE = 40000

    @property
    def neighbor_port(self) -> int:
        return self.NEIGHBOR_PORT_BASE + self.zone.zone_id

    def listen_neighbors(self) -> None:
        """Accept boundary-sync connections from west neighbours on the
        cluster-local network."""
        node = self.current_node()
        self._neighbor_listener = node.stack.tcp_socket(self.proc)
        self._neighbor_listener.bind(self.neighbor_port, ip=node.local_ip)
        self._neighbor_listener.listen()

        def accept_loop():
            while True:
                session = yield self._neighbor_listener.accept()
                self.env.process(self._neighbor_rx(session), name="zs-neigh-rx")

        self.env.process(accept_loop(), name=f"zs{self.zone.zone_id}-neigh-accept")

    def connect_neighbor(self, east: "ZoneServer", settle: float = 0.1) -> None:
        """Open the boundary-sync connection to the east neighbour."""
        if east._neighbor_listener is None:
            raise RuntimeError(f"neighbor zone {east.zone.zone_id} is not listening")
        sock = self.current_node().stack.tcp_socket(self.proc)
        ev = sock.connect(
            Endpoint(east.current_node().local_ip, east.neighbor_port)
        )
        self.env.run(until=self.env.now + settle)
        if not ev.triggered:
            raise RuntimeError(
                f"zone {self.zone.zone_id} -> {east.zone.zone_id}: "
                "neighbor handshake incomplete"
            )
        self.neighbor_sock = sock
        self.env.process(self._neighbor_rx(sock), name="zs-neigh-rx")

    def _neighbor_rx(self, sock: TCPSocket):
        while True:
            skb = yield sock.recv()
            if skb.size == 0:
                return
            self.neighbor_msgs_received += 1

    def _neighbor_loop(self):
        cfg = self.config
        while True:
            yield from self.proc.check_frozen()
            yield self.env.timeout(cfg.neighbor_sync_interval)
            yield from self.proc.check_frozen()
            if self.neighbor_sock is not None:
                self.neighbor_sock.send(
                    ("boundary", self.zone.zone_id), cfg.neighbor_sync_bytes
                )
                self.neighbor_msgs_sent += 1

    @property
    def state_area(self):
        """The world-state VMA (for workload drivers that dirty it)."""
        return self._state

    def current_node(self) -> Host:
        """The host this process currently runs on (changes on migration)."""
        kernel = self.proc.kernel
        for node in self.cluster.nodes:
            if node.kernel is kernel:
                return node
        raise RuntimeError(f"{self.proc} not on any cluster node")

    # -- load model ---------------------------------------------------------------
    def set_population(self, n_clients: int) -> None:
        """Clients currently in this zone drive the CPU demand."""
        if n_clients < 0:
            raise ValueError("population must be non-negative")
        self.population = n_clients
        cfg = self.config
        demand = cfg.cpu_base + cfg.cpu_per_client * n_clients
        self.proc.kernel.cpu.set_demand(self.proc, demand)

    @property
    def cpu_demand(self) -> float:
        return self.proc.cpu_demand

    # -- the real-time loop ----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("zone server already started")
        self._started = True
        self.set_population(self.population)
        if self.config.traffic_mode == "packet":
            self.env.process(self._packet_loop(), name=f"zs{self.zone.zone_id}-rt")
        else:
            self.env.process(self._fluid_loop(), name=f"zs{self.zone.zone_id}-rt")
        if self.db_session is not None:
            self.env.process(self._db_loop(), name=f"zs{self.zone.zone_id}-db")
        # Runs regardless: the neighbour link may be connected after
        # start() (the scenario wires links once all servers exist).
        self.env.process(self._neighbor_loop(), name=f"zs{self.zone.zone_id}-nb")

    def _dirty(self, pages: int) -> None:
        pages = min(pages, self._state.npages)
        self.proc.address_space.write_range(self._state, count=pages)

    def saturation_factor(self) -> float:
        """How much the node's CPU oversubscription stretches the
        real-time loop.  This is the paper's motivating failure mode:
        on an overloaded node the loop cannot hold its 20 Hz rate, so
        client updates arrive late and interactivity degrades."""
        cpu = self.proc.kernel.cpu
        return max(1.0, cpu.total_demand() / cpu.cores)

    def _packet_loop(self):
        cfg = self.config
        interval = 1.0 / cfg.update_hz
        while True:
            yield from self.proc.check_frozen()
            yield self.env.timeout(interval * self.saturation_factor())
            yield from self.proc.check_frozen()
            self._dirty(max(1, int(cfg.dirty_pages_per_second * interval)))
            for conn in self.client_conns:
                conn.send(("update", self.zone.zone_id), cfg.update_bytes)
                self.updates_sent += 1

    def _fluid_loop(self):
        cfg = self.config
        while True:
            yield from self.proc.check_frozen()
            yield self.env.timeout(1.0)
            yield from self.proc.check_frozen()
            self._dirty(cfg.dirty_pages_per_second)

    def _db_loop(self):
        cfg = self.config
        while True:
            yield from self.proc.check_frozen()
            yield self.env.timeout(cfg.db_query_interval)
            yield from self.proc.check_frozen()
            assert self.db_session is not None
            self.db_session.send(("update-world", self.zone.zone_id), cfg.db_query_bytes)
            skb = yield self.db_session.recv()
            if skb.size > 0:
                self.db_replies += 1
