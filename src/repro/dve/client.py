"""The client population and its movement model.

Section VI-C: 10,000 clients start uniformly distributed over the
zones; during the ~15-minute run, clients from the middle regions of
the virtual space gradually move towards the up-left and down-right
corners — the clustering behaviour reported as very common in
large-scale environments [24].

Positions are continuous (vectorized with numpy); zone populations are
derived by binning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .space import ZoneGrid

__all__ = ["MovementConfig", "ClientPopulation"]


@dataclass(frozen=True)
class MovementConfig:
    """Corner-drift movement parameters."""

    #: Fraction of middle-region clients that drift to a corner.
    mover_fraction: float = 0.7
    #: Rows considered the "middle region" (inclusive band).
    middle_rows: tuple[int, int] = (3, 6)
    #: Time for a mover to cover the full diagonal (seconds).
    travel_time: float = 600.0
    #: Random-walk jitter of non-movers (grid units per step).
    jitter: float = 0.05
    #: Size of the corner region movers settle in (grid units): targets
    #: are spread over a corner_spread x corner_spread area, so the
    #: crowd clusters in the corner *region*, not a single zone.
    corner_spread: float = 1.6


class ClientPopulation:
    """All clients' positions + the drift dynamics.

    ``rng`` is the *only* randomness source — initial placement, mover
    selection, speeds and jitter all draw from it, never from a module
    or global generator.  Pass a named stream from the cluster's seeded
    registry (``cluster.rng.stream("dve-clients")``) and a master seed
    replays the population byte for byte; the scenario plane
    (:class:`repro.scenarios.driver.ScenarioDriver`) honours the same
    contract with its ``"scenario"`` stream.
    """

    def __init__(
        self,
        grid: ZoneGrid,
        n_clients: int,
        rng: np.random.Generator,
        config: MovementConfig | None = None,
    ) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.grid = grid
        self.config = config or MovementConfig()
        self.rng = rng
        cfg = self.config

        # Uniform initial distribution over the whole world.
        self.positions = np.column_stack(
            [
                rng.uniform(0, grid.cols, size=n_clients),
                rng.uniform(0, grid.rows, size=n_clients),
            ]
        )

        rows = np.floor(self.positions[:, 1]).astype(int)
        in_middle = (rows >= cfg.middle_rows[0]) & (rows <= cfg.middle_rows[1])
        is_mover = in_middle & (rng.random(n_clients) < cfg.mover_fraction)
        self.movers = is_mover

        # Upper-middle clients head up-left, lower-middle down-right;
        # each mover settles at its own spot inside the corner region.
        mid_row = (cfg.middle_rows[0] + cfg.middle_rows[1] + 1) / 2
        up = self.positions[:, 1] < mid_row
        spread = rng.uniform(0.2, 0.2 + cfg.corner_spread, size=(n_clients, 2))
        self.targets = np.where(
            up[:, None],
            spread,
            np.array([[grid.cols, grid.rows]]) - spread,
        )
        # Per-client speed: full diagonal over travel_time, with spread.
        diagonal = float(np.hypot(grid.cols, grid.rows))
        base_speed = diagonal / cfg.travel_time
        self.speeds = base_speed * rng.uniform(0.6, 1.4, size=n_clients)

    def __len__(self) -> int:
        return len(self.positions)

    def step(self, dt: float) -> None:
        """Advance all clients by ``dt`` seconds."""
        cfg = self.config
        pos = self.positions
        # Movers drift toward their corner target.
        delta = self.targets - pos
        dist = np.linalg.norm(delta, axis=1, keepdims=True)
        np.clip(dist, 1e-9, None, out=dist)
        step_len = (self.speeds * dt)[:, None]
        drift = delta / dist * np.minimum(step_len, dist)
        pos[self.movers] += drift[self.movers]
        # Everyone jitters a little.
        pos += self.rng.normal(0.0, cfg.jitter * dt, size=pos.shape)
        np.clip(pos[:, 0], 0, self.grid.cols - 1e-6, out=pos[:, 0])
        np.clip(pos[:, 1], 0, self.grid.rows - 1e-6, out=pos[:, 1])

    def zone_counts(self) -> np.ndarray:
        """(rows, cols) array of client counts per zone."""
        cols = np.floor(self.positions[:, 0]).astype(int)
        rows = np.floor(self.positions[:, 1]).astype(int)
        counts = np.zeros((self.grid.rows, self.grid.cols), dtype=int)
        np.add.at(counts, (rows, cols), 1)
        return counts

    def count_in_zone(self, zone_id: int) -> int:
        counts = self.zone_counts()
        row, col = divmod(zone_id, self.grid.cols)
        return int(counts[row, col])
