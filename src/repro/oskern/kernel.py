"""The per-node simulated kernel.

Ties together the memory manager, CPU accounting, jiffies clock,
netfilter registry and the TCP/IP stack, and owns the process table.
The migration machinery manipulates these pieces exactly where the
paper's kernel modules would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..des import Environment
from ..net import Interface, IPAddr
from .costs import CostModel
from .jiffies import JiffiesClock
from .netfilter import NetfilterHooks
from .sched import CpuAccounting
from .task import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from ..tcpip.stack import NetworkStack

__all__ = ["Kernel"]


class Kernel:
    """One node's kernel state."""

    def __init__(
        self,
        env: Environment,
        node_name: str,
        cores: int = 2,
        jiffies_offset: int = 0,
        cost_model: Optional[CostModel] = None,
        local_prefix: str = "192.168.",
    ) -> None:
        self.env = env
        self.node_name = node_name
        self.jiffies = JiffiesClock(env, boot_offset=jiffies_offset)
        self.netfilter = NetfilterHooks()
        self.cpu = CpuAccounting(env, cores=cores)
        self.costs = cost_model or CostModel()
        self.local_prefix = local_prefix
        self.processes: dict[int, SimProcess] = {}
        self.public_iface: Optional[Interface] = None
        self.local_iface: Optional[Interface] = None
        #: Route cache: destination -> egress interface.  IPAddr is
        #: frozen/hashable, so the per-packet prefix string match in
        #: :meth:`route` collapses to one dict hit after the first
        #: lookup.  Invalidated whenever an interface is attached.
        self._route_cache: dict[IPAddr, Interface] = {}
        #: Set by ControlPlane when one is installed on this host.
        self.control = None
        # Imported here to keep the package layering acyclic
        # (oskern -> tcpip is the only downward edge).
        from ..tcpip.stack import NetworkStack

        self.stack: "NetworkStack" = NetworkStack(self)

    # -- interfaces / routing ------------------------------------------------
    def attach_public(self, iface: Interface) -> None:
        if self.public_iface is not None:
            raise RuntimeError("public interface already attached")
        self.public_iface = iface
        iface.set_rx_handler(self._rx)
        self._route_cache.clear()

    def attach_local(self, iface: Interface) -> None:
        if self.local_iface is not None:
            raise RuntimeError("local interface already attached")
        self.local_iface = iface
        iface.set_rx_handler(self._rx)
        self._route_cache.clear()

    def _rx(self, packet, iface: Interface) -> None:
        from ..net import PROTO_CTL

        if packet.proto == PROTO_CTL:
            if self.control is not None:
                self.control.dispatch(packet)
            return
        self.stack.ip_rcv(packet, iface)

    def route(self, dst_ip: IPAddr) -> Interface:
        """Pick the egress interface for a destination (cached)."""
        iface = self._route_cache.get(dst_ip)
        if iface is not None:
            return iface
        if self.local_iface is not None and dst_ip.value.startswith(self.local_prefix):
            iface = self.local_iface
        elif self.public_iface is not None:
            iface = self.public_iface
        elif self.local_iface is not None:
            iface = self.local_iface
        else:
            raise RuntimeError(f"{self.node_name}: no interface to reach {dst_ip}")
        self._route_cache[dst_ip] = iface
        return iface

    @property
    def local_ip(self) -> IPAddr:
        if self.local_iface is None:
            raise RuntimeError(f"{self.node_name} has no local interface")
        return self.local_iface.ip

    @property
    def public_ip(self) -> IPAddr:
        if self.public_iface is None:
            raise RuntimeError(f"{self.node_name} has no public interface")
        return self.public_iface.ip

    # -- process management -----------------------------------------------------
    def spawn_process(self, name: str, nthreads: int = 1) -> SimProcess:
        proc = SimProcess(self, name, nthreads=nthreads)
        self.processes[proc.pid] = proc
        return proc

    def adopt_process(self, proc: SimProcess) -> None:
        """Take ownership of a restarted (migrated-in) process."""
        proc.kernel = self
        self.processes[proc.pid] = proc
        self.cpu.adopt(proc)

    def remove_process(self, proc: SimProcess) -> None:
        """Drop a process from this kernel (exit or migration away)."""
        self.processes.pop(proc.pid, None)
        self.cpu.remove(proc)

    def process_by_pid(self, pid: int) -> SimProcess:
        try:
            return self.processes[pid]
        except KeyError:
            raise ValueError(f"no such pid {pid} on {self.node_name}") from None

    def __repr__(self) -> str:
        return f"<Kernel {self.node_name} procs={len(self.processes)}>"
