"""Per-node jiffies clocks.

Linux TCP timestamps are kernel jiffies — a counter incremented roughly
every 10 ms — and *different nodes have different jiffies* (Section
V-C.1).  Socket migration must therefore record the source jiffies at
checkpoint time, compute the delta on the destination, and shift every
timestamp in the restored socket.  A random per-node boot offset forces
that code path to do real work.
"""

from __future__ import annotations

from ..des import Environment

__all__ = ["JiffiesClock", "JIFFIES_HZ"]

#: Classic Linux 2.6 HZ=100: one jiffy per 10 ms.
JIFFIES_HZ = 100


class JiffiesClock:
    """A node-local jiffies counter derived from simulated time."""

    def __init__(self, env: Environment, boot_offset: int = 0, hz: int = JIFFIES_HZ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        if boot_offset < 0:
            raise ValueError("boot offset must be non-negative")
        self.env = env
        self.hz = hz
        self.boot_offset = int(boot_offset)

    @property
    def jiffies(self) -> int:
        """Current jiffies value on this node."""
        return self.boot_offset + int(self.env.now * self.hz)

    def to_seconds(self, njiffies: int) -> float:
        return njiffies / self.hz

    def delta_to(self, other: "JiffiesClock") -> int:
        """Jiffies offset to add when moving timestamps to ``other``.

        ``other.jiffies == self.jiffies + self.delta_to(other)`` at any
        instant (both clocks tick at the same rate; only boot offsets
        differ).
        """
        if self.hz != other.hz:
            raise ValueError("cannot relate clocks with different HZ")
        return other.boot_offset - self.boot_offset
