"""Fluid CPU accounting.

The load-balancing experiments (Fig. 5d/e/f) need per-node CPU
utilisation and per-process CPU consumption — what the paper's conductor
reads via *atop*.  Zone-server CPU demand is proportional to the number
of clients in the zone (Section VI-C), so a fluid model suffices: each
process declares a demand (fraction of one core, piecewise-constant in
time) and the scheduler integrates granted CPU time, scaling everything
down proportionally when the node saturates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..des import Environment

if TYPE_CHECKING:  # pragma: no cover
    from .task import SimProcess

__all__ = ["CpuAccounting"]


class CpuAccounting:
    """Per-node fluid CPU scheduler and accountant."""

    def __init__(self, env: Environment, cores: int = 2) -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        self.env = env
        self.cores = cores
        #: pid -> declared demand (fraction of one core, >= 0).
        self._demand: Dict[int, float] = {}
        #: pid -> accumulated CPU seconds actually granted.
        self._cpu_time: Dict[int, float] = {}
        self._last_update = env.now

    # -- internal ------------------------------------------------------------
    def _integrate(self) -> None:
        """Accrue CPU time for the interval since the last state change."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            total = sum(self._demand.values())
            scale = 1.0 if total <= self.cores else self.cores / total
            for pid, d in self._demand.items():
                if d > 0:
                    self._cpu_time[pid] = self._cpu_time.get(pid, 0.0) + d * scale * dt
        self._last_update = now

    # -- demand management ------------------------------------------------------
    def set_demand(self, proc: "SimProcess", demand: float) -> None:
        """Declare ``proc``'s CPU demand from now on."""
        if demand < 0:
            raise ValueError("demand must be non-negative")
        self._integrate()
        self._demand[proc.pid] = demand
        self._cpu_time.setdefault(proc.pid, 0.0)
        proc.cpu_demand = demand

    def remove(self, proc: "SimProcess") -> None:
        """Drop a process (exit or migration away)."""
        self._integrate()
        self._demand.pop(proc.pid, None)

    def adopt(self, proc: "SimProcess") -> None:
        """Take over accounting for an in-migrated process, keeping the
        demand it declared on the source node."""
        self._integrate()
        self._demand[proc.pid] = proc.cpu_demand
        self._cpu_time.setdefault(proc.pid, 0.0)

    def set_throttle(self, proc: "SimProcess", share: float) -> None:
        """Auto-convergence throttle: cap ``proc`` at ``share`` of its
        declared demand (1.0 = unthrottled).  The declared
        ``proc.cpu_demand`` is preserved so un-throttling and adoption
        on the destination restore the full demand.
        """
        if not 0.0 <= share <= 1.0:
            raise ValueError("throttle share must be in [0, 1]")
        self._integrate()
        if proc.pid in self._demand:
            self._demand[proc.pid] = proc.cpu_demand * share
        proc.cpu_throttle = share

    # -- queries --------------------------------------------------------------
    def runq_depth(self) -> int:
        """Runnable processes: those with a positive declared demand
        (the atop/telemetry notion of run-queue depth in a fluid model)."""
        return sum(1 for d in self._demand.values() if d > 0)

    def total_demand(self) -> float:
        self._integrate()
        return sum(self._demand.values())

    def utilization(self) -> float:
        """Node CPU utilisation in percent of total capacity, capped at 100."""
        return min(100.0, 100.0 * self.total_demand() / self.cores)

    def demand_of(self, proc: "SimProcess") -> float:
        return self._demand.get(proc.pid, 0.0)

    def cpu_time_of(self, proc: "SimProcess") -> float:
        """Accumulated CPU seconds granted to ``proc`` on this node."""
        self._integrate()
        return self._cpu_time.get(proc.pid, 0.0)

    def cpu_share_of(self, proc: "SimProcess") -> float:
        """``proc``'s *granted* share in percent of node capacity.

        This is the quantity the selection policy compares against the
        node-vs-cluster-average difference.
        """
        self._integrate()
        d = self._demand.get(proc.pid, 0.0)
        total = sum(self._demand.values())
        scale = 1.0 if total <= self.cores else self.cores / total
        return 100.0 * d * scale / self.cores
