"""Hosts: a kernel plus its interfaces plus the control plane.

A DVE server *node* is a host with both a public interface (shared
cluster IP, fed by the broadcast router) and a local one (unique cluster
address on the switch).  Database servers are local-only hosts; game
clients are public-only hosts.

The control plane carries the user-level daemons' traffic (conductor,
migd, transd) over the local network as sized packets, so bulk migration
data and middleware chatter genuinely contend for link bandwidth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..des import Environment, Event
from ..net import Interface, IPAddr, LOCAL, PROTO_CTL, PUBLIC, Packet
from .costs import CostModel
from .kernel import Kernel

__all__ = ["Host", "ControlPlane", "CtlEnvelope", "RpcError"]

_rpc_ids = itertools.count(1)


class RpcError(Exception):
    """Raised into an RPC waiter when the handler reports failure."""


@dataclass
class CtlEnvelope:
    """Framing for control-plane messages."""

    body: Any
    src_ip: IPAddr
    rpc_id: Optional[int] = None
    reply_to: Optional[int] = None
    is_error: bool = False


class ControlPlane:
    """Port-addressed datagram + RPC service for user-level daemons."""

    def __init__(self, env: Environment, kernel: Kernel) -> None:
        self.env = env
        self.kernel = kernel
        kernel.control = self  # type: ignore[attr-defined]
        #: port -> handler(body, src_ip, respond) where ``respond`` is
        #: ``None`` for one-way messages and a callable(body, size=...)
        #: for RPC requests.
        self._handlers: dict[int, Callable] = {}
        self._pending: dict[int, Event] = {}

    def register(self, port: int, handler: Callable) -> None:
        if port in self._handlers:
            raise ValueError(f"control port {port} already registered")
        self._handlers[port] = handler

    def unregister(self, port: int) -> None:
        self._handlers.pop(port, None)

    # -- sending ---------------------------------------------------------------
    def _transmit(self, dst_ip: IPAddr, port: int, envelope: CtlEnvelope, size: int) -> None:
        iface = self.kernel.route(dst_ip)
        pkt = Packet(
            src_ip=iface.ip,
            dst_ip=dst_ip,
            proto=PROTO_CTL,
            sport=port,
            dport=port,
            payload_size=max(size, 1) + self.kernel.costs.ctl_overhead_bytes,
            payload=envelope,
            sent_at=self.env.now,
        ).seal()
        iface.transmit(pkt)

    def send(self, dst_ip: IPAddr, port: int, body: Any, size: int = 256) -> None:
        """Fire-and-forget message."""
        env = CtlEnvelope(body=body, src_ip=self._src_ip(dst_ip))
        self._transmit(dst_ip, port, env, size)

    def rpc(
        self,
        dst_ip: IPAddr,
        port: int,
        body: Any,
        size: int = 256,
        timeout: Optional[float] = None,
    ) -> Event:
        """Request/response: the returned event succeeds with the reply
        body, or fails with :class:`RpcError` — immediately on an error
        reply, or after ``timeout`` seconds of silence (daemon crashed,
        node unreachable)."""
        rpc_id = next(_rpc_ids)
        ev = Event(self.env)
        self._pending[rpc_id] = ev
        env = CtlEnvelope(body=body, src_ip=self._src_ip(dst_ip), rpc_id=rpc_id)
        self._transmit(dst_ip, port, env, size)
        if timeout is not None:
            timer = self.env.timeout(timeout)

            def expire(_t):
                pending = self._pending.pop(rpc_id, None)
                if pending is not None:
                    pending.fail(RpcError(f"rpc to {dst_ip}:{port} timed out"))

            timer.callbacks.append(expire)
        return ev

    def _src_ip(self, dst_ip: IPAddr) -> IPAddr:
        return self.kernel.route(dst_ip).ip

    # -- receiving -----------------------------------------------------------------
    def dispatch(self, packet: Packet) -> None:
        envelope: CtlEnvelope = packet.payload
        if envelope.reply_to is not None:
            ev = self._pending.pop(envelope.reply_to, None)
            if ev is not None:
                if envelope.is_error:
                    ev.fail(RpcError(envelope.body))
                else:
                    ev.succeed(envelope.body)
            return

        handler = self._handlers.get(packet.dport)
        if handler is None:
            return  # nothing listening: drop, like an ICMP-less UDP void

        respond = None
        if envelope.rpc_id is not None:
            src = envelope.src_ip
            rpc_id = envelope.rpc_id
            port = packet.dport

            def respond(body: Any, size: int = 256, error: bool = False) -> None:
                reply = CtlEnvelope(
                    body=body,
                    src_ip=self._src_ip(src),
                    reply_to=rpc_id,
                    is_error=error,
                )
                self._transmit(src, port, reply, size)

        handler(envelope.body, envelope.src_ip, respond)


class Host:
    """A machine: kernel + up to two interfaces + optional control plane."""

    def __init__(
        self,
        env: Environment,
        name: str,
        public_ip: Optional[IPAddr] = None,
        local_ip: Optional[IPAddr] = None,
        cores: int = 2,
        jiffies_offset: int = 0,
        cost_model: Optional[CostModel] = None,
        local_prefix: str = "192.168.",
    ) -> None:
        if public_ip is None and local_ip is None:
            raise ValueError("a host needs at least one interface")
        self.env = env
        self.name = name
        self.kernel = Kernel(
            env,
            node_name=name,
            cores=cores,
            jiffies_offset=jiffies_offset,
            cost_model=cost_model,
            local_prefix=local_prefix,
        )
        self.public_iface: Optional[Interface] = None
        self.local_iface: Optional[Interface] = None
        if public_ip is not None:
            self.public_iface = Interface(public_ip, PUBLIC, f"{name}-pub")
            self.kernel.attach_public(self.public_iface)
        if local_ip is not None:
            self.local_iface = Interface(local_ip, LOCAL, f"{name}-loc")
            self.kernel.attach_local(self.local_iface)
        self.control = ControlPlane(env, self.kernel)
        #: Daemons installed on this host (conductor, migd, transd, ...).
        self.daemons: dict[str, Any] = {}

    @property
    def local_ip(self) -> IPAddr:
        return self.kernel.local_ip

    @property
    def public_ip(self) -> IPAddr:
        return self.kernel.public_ip

    @property
    def stack(self):
        return self.kernel.stack

    def __repr__(self) -> str:
        return f"<Host {self.name}>"
