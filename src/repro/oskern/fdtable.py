"""File-descriptor tables and open-file objects.

The freeze phase iterates the FD table (Section III-C): regular files
are re-opened on the destination (contents are *not* transferred — files
are replicated or on a shared FS, Section II-A), and sockets take the
socket-migration path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["OpenFile", "RegularFile", "SocketFile", "FDTable"]


@dataclass
class OpenFile:
    """Base open-file entry."""

    description: str = ""


@dataclass
class RegularFile(OpenFile):
    """A regular file: path + cursor + flags.  Contents live on the
    shared/replicated filesystem, so only this metadata migrates."""

    path: str = ""
    offset: int = 0
    flags: str = "r"

    def checkpoint_record(self) -> dict[str, Any]:
        return {"kind": "file", "path": self.path, "offset": self.offset, "flags": self.flags}


@dataclass
class SocketFile(OpenFile):
    """An FD slot holding a socket object (TCP or UDP)."""

    socket: Any = None

    def checkpoint_record(self) -> dict[str, Any]:  # pragma: no cover - never used
        raise RuntimeError("sockets are checkpointed by the socket-migration path")


class FDTable:
    """fd -> OpenFile mapping with POSIX-style lowest-free allocation."""

    def __init__(self) -> None:
        self._entries: dict[int, OpenFile] = {}

    def install(self, file: OpenFile, fd: Optional[int] = None) -> int:
        """Install ``file``; allocates the lowest free fd unless given."""
        if fd is None:
            fd = 0
            while fd in self._entries:
                fd += 1
        elif fd in self._entries:
            raise ValueError(f"fd {fd} already in use")
        elif fd < 0:
            raise ValueError("fd must be non-negative")
        self._entries[fd] = file
        return fd

    def close(self, fd: int) -> OpenFile:
        try:
            return self._entries.pop(fd)
        except KeyError:
            raise ValueError(f"bad file descriptor {fd}") from None

    def get(self, fd: int) -> OpenFile:
        try:
            return self._entries[fd]
        except KeyError:
            raise ValueError(f"bad file descriptor {fd}") from None

    def fd_of(self, file: OpenFile) -> int:
        for fd, entry in self._entries.items():
            if entry is file:
                return fd
        raise ValueError("file not in table")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries

    def items(self) -> Iterator[tuple[int, OpenFile]]:
        """Iterate (fd, file) in fd order — the freeze-phase table walk."""
        return iter(sorted(self._entries.items()))

    def sockets(self) -> list[tuple[int, SocketFile]]:
        return [(fd, f) for fd, f in self.items() if isinstance(f, SocketFile)]

    def regular_files(self) -> list[tuple[int, RegularFile]]:
        return [(fd, f) for fd, f in self.items() if isinstance(f, RegularFile)]
