"""Netfilter-style hook chains.

The paper's ``cap_trans_mod`` attaches functions to two phases of
network-stack processing (Sections V-B, V-D):

- ``NF_INET_LOCAL_IN`` — packets delivered to the local host (where both
  the capture filter and the incoming half of address translation live);
- ``NF_INET_LOCAL_OUT`` — locally generated packets (outgoing half of
  address translation).

Hooks run in priority order and return a verdict; ``NF_STOLEN`` means
the hook consumed the packet (e.g. queued it for later reinjection).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..net import Packet

__all__ = [
    "NF_INET_LOCAL_IN",
    "NF_INET_LOCAL_OUT",
    "NF_ACCEPT",
    "NF_DROP",
    "NF_STOLEN",
    "NetfilterHook",
    "NetfilterHooks",
]

NF_INET_LOCAL_IN = "NF_INET_LOCAL_IN"
NF_INET_LOCAL_OUT = "NF_INET_LOCAL_OUT"

NF_ACCEPT = "NF_ACCEPT"
NF_DROP = "NF_DROP"
NF_STOLEN = "NF_STOLEN"

_hook_ids = itertools.count(1)

HookFn = Callable[[Packet], str]


@dataclass
class NetfilterHook:
    """One registered hook function."""

    chain: str
    fn: HookFn
    priority: int = 0
    name: str = ""
    hook_id: int = field(default_factory=lambda: next(_hook_ids))


class NetfilterHooks:
    """The per-node hook registry, traversed by the IP layer."""

    CHAINS = (NF_INET_LOCAL_IN, NF_INET_LOCAL_OUT)

    def __init__(self) -> None:
        self._chains: dict[str, list[NetfilterHook]] = {c: [] for c in self.CHAINS}

    def register(self, chain: str, fn: HookFn, priority: int = 0, name: str = "") -> NetfilterHook:
        if chain not in self._chains:
            raise ValueError(f"unknown chain {chain!r}")
        hook = NetfilterHook(chain, fn, priority, name)
        self._chains[chain].append(hook)
        self._chains[chain].sort(key=lambda h: (h.priority, h.hook_id))
        return hook

    def unregister(self, hook: NetfilterHook) -> None:
        try:
            self._chains[hook.chain].remove(hook)
        except ValueError:
            raise ValueError(f"hook {hook.name!r} is not registered") from None

    def hooks(self, chain: str) -> list[NetfilterHook]:
        return list(self._chains[chain])

    def run(self, chain: str, packet: Packet) -> str:
        """Run ``packet`` through ``chain``; first non-ACCEPT verdict wins."""
        if chain not in self._chains:
            raise ValueError(f"unknown chain {chain!r}")
        for hook in self._chains[chain]:
            verdict = hook.fn(packet)
            if verdict == NF_ACCEPT:
                continue
            if verdict in (NF_DROP, NF_STOLEN):
                return verdict
            raise ValueError(f"hook {hook.name!r} returned bad verdict {verdict!r}")
        return NF_ACCEPT
