"""Simulated operating-system kernel (substrate).

Per-node kernels with: jiffies clocks, address spaces with dirty-bit
page tracking and VMA lists, threads/processes with FD tables, fluid CPU
accounting, netfilter hook chains, and hosts tying kernels to network
interfaces plus a control plane for user-level daemons.
"""

from .costs import CostModel, PAGE_SIZE
from .fdtable import FDTable, OpenFile, RegularFile, SocketFile
from .jiffies import JIFFIES_HZ, JiffiesClock
from .kernel import Kernel
from .memory import AddressSpace, VMArea
from .netfilter import (
    NF_ACCEPT,
    NF_DROP,
    NF_INET_LOCAL_IN,
    NF_INET_LOCAL_OUT,
    NF_STOLEN,
    NetfilterHook,
    NetfilterHooks,
)
from .node import ControlPlane, CtlEnvelope, Host, RpcError
from .sched import CpuAccounting
from .task import ProcessState, SimProcess, Thread

__all__ = [
    "CostModel",
    "PAGE_SIZE",
    "JiffiesClock",
    "JIFFIES_HZ",
    "AddressSpace",
    "VMArea",
    "FDTable",
    "OpenFile",
    "RegularFile",
    "SocketFile",
    "Thread",
    "SimProcess",
    "ProcessState",
    "CpuAccounting",
    "NetfilterHooks",
    "NetfilterHook",
    "NF_INET_LOCAL_IN",
    "NF_INET_LOCAL_OUT",
    "NF_ACCEPT",
    "NF_DROP",
    "NF_STOLEN",
    "Kernel",
    "Host",
    "ControlPlane",
    "CtlEnvelope",
    "RpcError",
]
