"""Threads and processes (the migratable units).

A :class:`SimProcess` is what the paper migrates: an address space, an
FD table, and one or more :class:`Thread`\\ s with registers and signal
handlers.  Application behaviour is driven by DES generator processes;
the *freeze* protocol of live migration parks them on a thaw event so
no application code runs while the execution context is in flight.

The signal-based checkpoint notification (Section III-A) is modelled by
:meth:`SimProcess.deliver_checkpoint_signal`: threads executing a system
call abandon it and return to userspace first — which is what guarantees
that no socket is locked and no prequeue is in use during the freeze
(Section V-C.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..des import Environment, Event
from .fdtable import FDTable
from .memory import AddressSpace

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

__all__ = ["Thread", "SimProcess", "ProcessState"]

_tids = itertools.count(100)
_pids = itertools.count(1000)


class ProcessState:
    RUNNING = "running"
    FROZEN = "frozen"
    EXITED = "exited"
    #: Exists on the destination but has not received execution context.
    EMBRYO = "embryo"


@dataclass
class Thread:
    """One kernel task: registers, signal handlers, syscall state."""

    tid: int = field(default_factory=lambda: next(_tids))
    #: Opaque register state; bumped by app code so tests can verify
    #: the *latest* context (not a stale one) arrived at the destination.
    registers_version: int = 0
    signal_handlers: dict[int, str] = field(default_factory=dict)
    #: True while the thread is blocked inside a syscall.
    in_syscall: bool = False
    #: Called when a checkpoint signal forces the thread out of a
    #: syscall (releases socket locks, drains the prequeue, ...).
    syscall_abort: Optional[Callable[[], None]] = None

    def touch_registers(self) -> None:
        self.registers_version += 1

    def checkpoint_record(self) -> dict[str, Any]:
        return {
            "tid": self.tid,
            "registers_version": self.registers_version,
            "signal_handlers": dict(self.signal_handlers),
        }


class SimProcess:
    """A simulated OS process — the migratable unit of the system."""

    def __init__(self, kernel: "Kernel", name: str, nthreads: int = 1) -> None:
        if nthreads < 1:
            raise ValueError("a process needs at least one thread")
        self.pid = next(_pids)
        self.name = name
        self.kernel = kernel
        self.address_space = AddressSpace()
        self.fdtable = FDTable()
        self.threads = [Thread() for _ in range(nthreads)]
        self.state = ProcessState.RUNNING
        #: Event recreated on each freeze; app loops wait on it to thaw.
        self._thaw_event: Optional[Event] = None
        #: CPU demand (fraction of one core) for the fluid scheduler.
        self.cpu_demand = 0.0
        #: Auto-convergence throttle: fraction of normal speed the
        #: workload is allowed (1.0 = unthrottled).  Workloads honour it
        #: by stretching their write interval.
        self.cpu_throttle = 1.0
        #: Post-copy demand-fetch hook.  When set (process restored with
        #: absent pages), ``touch_range`` routes writes that hit a
        #: non-resident page through it; the handler is a generator
        #: function ``(start, end) -> Generator`` that completes once
        #: the pages are resident.
        self.page_fault_handler: Optional[Callable[[int, int], Generator]] = None

    # -- convenience ---------------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.kernel.env

    @property
    def node_name(self) -> str:
        return self.kernel.node_name

    @property
    def main_thread(self) -> Thread:
        return self.threads[0]

    def clone_thread(self) -> Thread:
        """Add a thread (used by the migration helper thread)."""
        t = Thread()
        self.threads.append(t)
        return t

    def reap_thread(self, thread: Thread) -> None:
        if thread is self.main_thread:
            raise ValueError("cannot reap the main thread")
        self.threads.remove(thread)

    # -- freeze protocol -------------------------------------------------------
    @property
    def is_frozen(self) -> bool:
        return self.state == ProcessState.FROZEN

    def freeze(self) -> None:
        """Stop application execution (start of the freeze phase)."""
        if self.state != ProcessState.RUNNING:
            raise RuntimeError(f"cannot freeze process in state {self.state}")
        self.state = ProcessState.FROZEN
        self._thaw_event = Event(self.env)

    def thaw(self) -> None:
        """Resume application execution (restart finished / abort)."""
        if self.state != ProcessState.FROZEN:
            raise RuntimeError(f"cannot thaw process in state {self.state}")
        self.state = ProcessState.RUNNING
        ev, self._thaw_event = self._thaw_event, None
        assert ev is not None
        ev.succeed()

    def exit(self) -> None:
        self.state = ProcessState.EXITED
        self.kernel.remove_process(self)

    def check_frozen(self) -> Generator:
        """``yield from`` this at loop tops of application code: blocks
        while the process is frozen, no-ops otherwise."""
        while self.state == ProcessState.FROZEN:
            assert self._thaw_event is not None
            yield self._thaw_event
        return None

    def touch_range(self, area: Any, count: int, offset: int = 0) -> Generator:
        """``yield from`` write path for workloads that may run under an
        in-flight post-copy restore: blocks while frozen, demand-fetches
        any non-resident pages through :attr:`page_fault_handler`, then
        performs the write.  Equivalent to plain
        ``address_space.write_range`` when all pages are resident.
        """
        yield from self.check_frozen()
        space = self.address_space
        if space.has_absent and self.page_fault_handler is not None:
            start = area.start + offset
            end = start + count
            while True:
                missing = space.absent_in(start, end)
                if not missing:
                    break
                yield from self.page_fault_handler(missing[0][0], missing[0][1])
        space.write_range(area, count, offset)
        return None

    # -- signals ------------------------------------------------------------------
    def deliver_checkpoint_signal(self) -> int:
        """Deliver the live-checkpoint signal to all threads.

        Threads inside a syscall abandon it (running their registered
        abort action, e.g. releasing a socket lock) and return to
        userspace.  Returns the number of threads that were forced out
        of syscalls.
        """
        aborted = 0
        for thread in self.threads:
            if thread.in_syscall:
                if thread.syscall_abort is not None:
                    thread.syscall_abort()
                thread.in_syscall = False
                thread.syscall_abort = None
                aborted += 1
        return aborted

    # -- sockets -----------------------------------------------------------------
    def sockets(self) -> list[Any]:
        """All socket objects in this process's FD table, fd order."""
        return [sf.socket for _, sf in self.fdtable.sockets()]

    def __repr__(self) -> str:
        return f"<SimProcess pid={self.pid} {self.name!r} on {self.node_name} {self.state}>"
