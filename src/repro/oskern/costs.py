"""Cost-model calibration constants.

Every simulated CPU cost of the migration machinery lives here, so that
each figure harness runs against the *same* calibration and ablations can
perturb a single knob.  Values are chosen to land in the regimes the
paper reports (Section VI): ~20 ms OpenArena downtime, iterative socket
migration ~linear to ~180 ms at 1024 connections, incremental collective
< 40 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "PAGE_SIZE"]

PAGE_SIZE = 4096


@dataclass(frozen=True)
class CostModel:
    """CPU and state-size constants used by checkpoint/migration code."""

    # ---- memory / precopy ----
    #: CPU cost of dumping one dirty page (scan + memcpy into send buffer).
    page_dump_cost: float = 3e-6
    #: CPU cost of scanning page-table entries per page (dirty-bit walk).
    pte_scan_cost: float = 0.05e-6
    #: CPU cost of comparing one VMA against the tracking list.
    vma_compare_cost: float = 0.3e-6
    #: Fixed per-precopy-round overhead (ioctl entry, bookkeeping).
    round_overhead: float = 150e-6

    # ---- freeze phase ----
    #: Signal delivery + handler entry per thread.
    signal_cost: float = 30e-6
    #: Barrier synchronization cost per thread.
    barrier_cost: float = 5e-6
    #: Dumping registers/sighandlers/IDs per thread.
    thread_ctx_bytes: int = 1200
    thread_ctx_cost: float = 12e-6
    #: Dumping one non-socket file-table entry.
    file_entry_bytes: int = 120
    file_entry_cost: float = 4e-6

    # ---- socket migration ----
    #: CPU: full subtract of one TCP socket (unhash, timers, queues).
    tcp_subtract_cost: float = 25e-6
    #: CPU: incremental diff of one tracked, quiescent TCP socket.
    tcp_incremental_cost: float = 8e-6
    #: CPU: restore one TCP socket on the destination.
    tcp_restore_cost: float = 12e-6
    #: Bytes: full TCP socket state (struct sock + tcp_sock + bookkeeping).
    tcp_state_bytes: int = 3200
    #: Bytes: incremental delta of a quiescent established TCP socket
    #: (sequence counters, timestamps, window fields).
    tcp_delta_bytes: int = 96
    #: Bytes: per-buffered-packet overhead when dumping queues.
    skb_meta_bytes: int = 48
    #: CPU/bytes for UDP sockets (much lighter, Section V-C.2).
    udp_subtract_cost: float = 8e-6
    udp_restore_cost: float = 6e-6
    udp_state_bytes: int = 640
    udp_delta_bytes: int = 48
    #: Control message sizes for capture-enable requests.
    capture_req_bytes_per_socket: int = 24
    capture_req_base_bytes: int = 64
    #: CPU to install one capture filter on the destination.
    capture_install_cost: float = 6e-6
    #: CPU to reinject one captured packet through okfn().
    reinject_cost: float = 4e-6
    #: CPU to install one address-translation filter pair (transd).
    translation_install_cost: float = 15e-6

    # ---- delta compression (zero-page / XBZRLE stage) ----
    #: CPU cost of scanning one page for the all-zero fast path.
    zero_scan_cost: float = 0.4e-6
    #: Wire bytes for a zero page (record header + marker byte).
    zero_page_bytes: int = 9
    #: CPU cost of XBZRLE-encoding one page against its cached copy.
    xbzrle_encode_cost: float = 1.5e-6
    #: Modelled delta size per version step between the cached and the
    #: current page contents (run-length encoded word diffs).
    xbzrle_delta_bytes: int = 256

    # ---- post-copy ----
    #: CPU cost of looking up + serving one page from the source store.
    postcopy_serve_cost: float = 1e-6
    #: Fixed round-trip overhead bytes of one demand-fetch request.
    postcopy_fetch_req_bytes: int = 48
    #: Pages per background-push batch (one channel request each).
    postcopy_push_pages: int = 128

    # ---- transport framing for the migration channel ----
    #: Bulk data is chunked into messages of at most this payload size.
    migration_chunk_bytes: int = 61440
    #: Per-control-message protocol overhead (headers, framing).
    ctl_overhead_bytes: int = 64

    def with_overrides(self, **kw) -> "CostModel":
        """A copy with selected knobs replaced (ablation helper)."""
        return replace(self, **kw)
