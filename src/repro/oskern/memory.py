"""Process address spaces: VMA lists and extent-based dirty tracking.

The live-migration mechanism needs two things from memory management
(Section V-A):

1. *dirty-page tracking* between precopy rounds — we model the page-table
   dirty bit directly: every simulated write sets it, and the checkpoint
   code clears it after dumping;
2. *address-space change tracking* — insertions, modifications and
   removals of mapped areas, which Linux keeps as a ``vm_area_struct``
   list.  The migration module maintains its own tracking list and diffs
   it against the live list each round (see :mod:`repro.core.tracking`).

Pages carry a monotonically increasing *version* instead of data, so
tests can assert exactly which page contents reached the destination.

Representation.  Workloads write *ranges* (``write_range``), so the
write path is batched instead of per-page:

* dirty bits live in an :class:`ExtentSet` — sorted, disjoint half-open
  ``[start, end)`` runs kept as a flat boundary list, so marking a range
  dirty is an O(log n) interval merge rather than a per-page loop;
* versions live in one flat ``array('Q')`` per VMA, indexed by page
  offset (a dict keyed by offset stands in only for *sparse* VMAs above
  :data:`_DENSE_LIMIT_PAGES`, where a flat array would waste memory).
  Writes only record ``+1 at start, -1 at end`` boundary deltas — a
  difference array — and the arrays are *materialized lazily* at
  read/dump time by one sweep over the accumulated boundaries, applied
  as C-level slice operations.  Re-dirtying the same hot ranges many
  times between precopy rounds therefore costs O(1) per write and one
  slice bump per run per round, instead of one dict update per page per
  write; dump views (:meth:`AddressSpace.dirty_version_map`) are built
  from memoryview slices over the arrays rather than per-page lookups.

The VMA list is kept sorted by ``start`` with a parallel key list, so
``find_vma``/``_insert``/``resize`` are O(log n) bisects with
neighbour-only overlap checks instead of linear scans.
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .costs import PAGE_SIZE

__all__ = ["VMArea", "AddressSpace", "ExtentSet", "PAGE_SIZE", "extents_of"]

_vma_ids = itertools.count(1)

#: VMAs at or above this page count get a dict-backed sparse store
#: instead of a flat ``array('Q')`` (8 bytes per page up front).  1M
#: pages = a 4 GiB mapping = an 8 MiB version array; anything bigger is
#: a sparse giant mapping that would mostly hold zeros.
_DENSE_LIMIT_PAGES = 1 << 20

#: A page store: flat version array indexed by page offset within the
#: VMA, or (sparse fallback) offset -> version with an implicit 0.
PageStore = Union["array[int]", dict]


@dataclass
class VMArea:
    """A contiguous mapped region, analogous to ``vm_area_struct``.

    ``start``/``end`` are page numbers (end exclusive).  Identity is by
    ``vma_id`` so that a *moved or resized* area is recognized as a
    modification, not a remove+insert.
    """

    start: int
    end: int
    perms: str = "rw"
    tag: str = ""
    vma_id: int = field(default_factory=lambda: next(_vma_ids))

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty VMA [{self.start}, {self.end})")
        # Owning AddressSpace while mapped (cleared on munmap): lets the
        # write path validate a caller-held VMArea reference in O(1)
        # instead of re-finding it by bisect.  Not a dataclass field, so
        # snapshots/eq/repr are unaffected.
        self._space: Optional["AddressSpace"] = None

    @property
    def npages(self) -> int:
        return self.end - self.start

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def pages(self) -> range:
        return range(self.start, self.end)

    def snapshot(self) -> tuple[int, int, int, str]:
        """Hashable view (vma_id, start, end, perms) for tracking diffs."""
        return (self.vma_id, self.start, self.end, self.perms)

    def __str__(self) -> str:
        return f"vma#{self.vma_id}[{self.start},{self.end}) {self.perms} {self.tag}"


class ExtentSet:
    """A set of page numbers stored as sorted disjoint half-open runs.

    The runs live in one flat boundary list ``[s0, e0, s1, e1, ...]``
    with ``s0 < e0 < s1 < e1 < ...`` (touching runs are merged), so
    membership is a single :func:`bisect_right` — an odd insertion point
    means *inside a run* — and adding or removing a range merges or
    splits at most two boundary runs.
    """

    __slots__ = ("_b", "_count")

    def __init__(self) -> None:
        self._b: list[int] = []
        self._count = 0

    def __contains__(self, vpn: int) -> bool:
        return bisect_right(self._b, vpn) & 1 == 1

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def add(self, start: int, end: int) -> int:
        """Add ``[start, end)``; returns the number of newly-added pages."""
        if end <= start:
            return 0
        b = self._b
        # Fast path for the precopy-hot shape — re-dirtying a range that
        # is already entirely inside one run: a single bisect, no writes.
        i = bisect_right(b, start)
        if i & 1 and end <= b[i]:
            return 0
        lo = i - 1 if i and b[i - 1] == start else i
        hi = bisect_right(b, end)
        left = b[lo - 1] if lo & 1 else start
        right = b[hi] if hi & 1 else end
        lo -= lo & 1
        hi += hi & 1
        swallowed = b[lo:hi]
        prev = 0
        for j in range(0, len(swallowed), 2):
            prev += swallowed[j + 1] - swallowed[j]
        b[lo:hi] = (left, right)
        added = (right - left) - prev
        self._count += added
        return added

    def remove(self, start: int, end: int) -> int:
        """Remove ``[start, end)``; returns the number of pages removed."""
        if end <= start or not self._b:
            return 0
        removed = self.covered(start, end)
        if removed == 0:
            return 0
        b = self._b
        lo = bisect_right(b, start)
        hi = bisect_left(b, end)
        new_bounds = []
        if lo & 1:
            if start > b[lo - 1]:
                new_bounds.append(start)
            else:
                lo -= 1  # run starts exactly at ``start``: drop it whole
        if hi & 1:
            if end < b[hi]:
                new_bounds.append(end)
            else:
                hi += 1  # run ends exactly at ``end``: drop it whole
        b[lo:hi] = new_bounds
        self._count -= removed
        return removed

    def covered(self, start: int, end: int) -> int:
        """Number of member pages inside ``[start, end)``."""
        b = self._b
        i = bisect_right(b, start)
        i -= i & 1
        total = 0
        n = len(b)
        while i < n and b[i] < end:
            lo = b[i] if b[i] > start else start
            hi = b[i + 1] if b[i + 1] < end else end
            if hi > lo:
                total += hi - lo
            i += 2
        return total

    def clear(self) -> None:
        self._b.clear()
        self._count = 0

    def extents(self) -> list[tuple[int, int]]:
        """Sorted disjoint ``(start, end)`` runs."""
        b = self._b
        return [(b[i], b[i + 1]) for i in range(0, len(b), 2)]

    def pages(self) -> list[int]:
        """Sorted member pages, materialized."""
        out: list[int] = []
        b = self._b
        for i in range(0, len(b), 2):
            out.extend(range(b[i], b[i + 1]))
        return out

    def intersect(self, start: int, end: int) -> list[tuple[int, int]]:
        """Member runs clipped to ``[start, end)``."""
        out: list[tuple[int, int]] = []
        b = self._b
        i = bisect_right(b, start)
        i -= i & 1
        n = len(b)
        while i < n and b[i] < end:
            lo = b[i] if b[i] > start else start
            hi = b[i + 1] if b[i + 1] < end else end
            if hi > lo:
                out.append((lo, hi))
            i += 2
        return out


def _new_store(npages: int) -> PageStore:
    """Zero-version page store for a fresh mapping."""
    if npages >= _DENSE_LIMIT_PAGES:
        return {}
    return array("Q", bytes(8 * npages))


class AddressSpace:
    """Per-process memory: sorted VMA list + batched dirty/version state."""

    def __init__(self) -> None:
        #: Ordered by start page, non-overlapping.
        self.vmas: list[VMArea] = []
        #: Parallel sorted key list (``vma.start`` never mutates in place).
        self._vma_starts: list[int] = []
        #: vma_id -> page store (version per page offset; see module doc).
        #: Lags behind by the deltas in :attr:`_pending`; every reader
        #: goes through :meth:`_flush_versions` first.
        self._stores: dict[int, PageStore] = {}
        #: Difference array of unapplied writes: boundary -> delta
        #: (``+1`` at each written range's start, ``-1`` at its end).
        self._pending: dict[int, int] = {}
        #: Pages with the dirty bit set, run-length encoded.
        self._dirty = ExtentSet()
        #: Pages mapped but not resident (post-copy migration: the VMA
        #: exists, the contents have not arrived yet).  Empty for every
        #: process outside an in-flight post-copy restore, so the guard
        #: in the write path is one cheap truthiness check.
        self._absent = ExtentSet()
        #: Cached result of :meth:`dirty_pages`; invalidated on any
        #: dirty-state change so repeated reads in the precopy loop are
        #: free (treat the returned list as read-only).
        self._dirty_cache: Optional[list[int]] = None
        #: Bumped whenever the VMA *map* changes (mmap/munmap/resize/
        #: load_snapshot).  The migration tracker compares this against
        #: its last-seen value to skip the diff scan entirely.
        self.map_version = 0
        self._next_free_page = 0x1000  # arbitrary non-zero base

    # -- mapping ------------------------------------------------------------
    def mmap(self, npages: int, perms: str = "rw", tag: str = "") -> VMArea:
        """Map a fresh area at the next free range (allocations)."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        start = self._next_free_page
        self._next_free_page += npages + 16  # guard gap
        area = VMArea(start, start + npages, perms, tag)
        self._insert(area)
        return area

    def _insert(self, area: VMArea) -> None:
        idx = bisect_right(self._vma_starts, area.start)
        if idx > 0 and self.vmas[idx - 1].end > area.start:
            raise ValueError(f"{area} overlaps {self.vmas[idx - 1]}")
        if idx < len(self.vmas) and self.vmas[idx].start < area.end:
            raise ValueError(f"{area} overlaps {self.vmas[idx]}")
        self.vmas.insert(idx, area)
        self._vma_starts.insert(idx, area.start)
        self._stores[area.vma_id] = _new_store(area.end - area.start)
        area._space = self
        # Newly mapped pages are dirty: they never reached the destination.
        self._dirty.add(area.start, area.end)
        self._dirty_cache = None
        self.map_version += 1

    def munmap(self, area: VMArea) -> None:
        """Unmap an area (frees)."""
        idx = bisect_left(self._vma_starts, area.start)
        if idx >= len(self.vmas) or self.vmas[idx] != area:
            raise ValueError(f"{area} is not mapped")
        self._flush_versions()  # before the store the sweep relies on goes away
        del self.vmas[idx]
        del self._vma_starts[idx]
        del self._stores[area.vma_id]
        area._space = None
        self._dirty.remove(area.start, area.end)
        if self._absent:
            self._absent.remove(area.start, area.end)
        self._dirty_cache = None
        self.map_version += 1

    def resize(self, area: VMArea, new_npages: int) -> None:
        """Grow or shrink an area in place (mremap-style modification)."""
        if new_npages <= 0:
            raise ValueError("new size must be positive")
        old_end = area.end
        new_end = area.start + new_npages
        store = self._stores[area.vma_id]
        if new_end > old_end:
            idx = bisect_right(self._vma_starts, area.start)
            if idx < len(self.vmas) and self.vmas[idx].start < new_end:
                raise ValueError("resize would overlap a neighbouring VMA")
            if isinstance(store, array):
                store.extend(array("Q", bytes(8 * (new_end - old_end))))
            self._dirty.add(old_end, new_end)
        elif new_end < old_end:
            self._flush_versions()
            if isinstance(store, array):
                del store[new_npages:]
            else:
                for off in [o for o in store if o >= new_npages]:
                    del store[off]
            self._dirty.remove(new_end, old_end)
            if self._absent:
                self._absent.remove(new_end, old_end)
        area.end = new_end
        self._dirty_cache = None
        self.map_version += 1

    def find_vma(self, vpn: int) -> Optional[VMArea]:
        idx = bisect_right(self._vma_starts, vpn) - 1
        if idx >= 0:
            area = self.vmas[idx]
            if vpn < area.end:
                return area
        return None

    # -- page access ----------------------------------------------------------
    def write_page(self, vpn: int) -> None:
        """Simulate a store to a page: sets the dirty bit, bumps version."""
        if self.find_vma(vpn) is None:
            raise ValueError(f"page fault: page {vpn:#x} is not mapped")
        if self._absent and vpn in self._absent:
            raise ValueError(f"page fault: page {vpn:#x} is not resident")
        pending = self._pending
        end = vpn + 1
        pending[vpn] = pending.get(vpn, 0) + 1
        pending[end] = pending.get(end, 0) - 1
        if self._dirty.add(vpn, end):
            self._dirty_cache = None

    def write_range(self, area: VMArea, count: int, offset: int = 0) -> None:
        """Write ``count`` consecutive pages of ``area`` starting at offset.

        O(log n): two boundary-delta bumps for the versions plus one
        extent merge for the dirty bits, regardless of ``count``.
        """
        if offset < 0 or offset + count > area.end - area.start:
            raise ValueError("write range outside area")
        if count <= 0:
            return
        start = area.start + offset
        end = start + count
        if area._space is not self:
            # Stale reference (unmapped, or a pre-restore VMA object held
            # across a migration): fall back to an address lookup — the
            # write is legal iff a live VMA covers the range.
            live = self.find_vma(start)
            if live is None or end > live.end:
                vpn = start if live is None else live.end
                raise ValueError(f"page fault: page {vpn:#x} is not mapped")
        if self._absent and self._absent.covered(start, end):
            vpn = self._absent.intersect(start, end)[0][0]
            raise ValueError(f"page fault: page {vpn:#x} is not resident")
        pending = self._pending
        pending[start] = pending.get(start, 0) + 1
        pending[end] = pending.get(end, 0) - 1
        if self._dirty.add(start, end):
            self._dirty_cache = None

    def _flush_versions(self) -> None:
        """Fold the pending write deltas into the per-VMA page stores.

        One sorted sweep over the recorded boundaries; each segment with
        a positive cumulative delta is bumped with C-level array slice
        operations (split at VMA boundaries — adjacent restored VMAs can
        share one written segment).  N writes to the same hot range
        between flushes collapse into a single +N bump per page.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = {}
        cum = 0
        prev = 0
        for bound in sorted(pending):
            if cum > 0:
                self._bump_segment(prev, bound, cum)
            cum += pending[bound]
            prev = bound
        # Boundary deltas sum to zero, so the sweep always ends at cum == 0.

    def _bump_segment(self, start: int, end: int, cum: int) -> None:
        """Apply ``+cum`` to every page version in ``[start, end)``."""
        starts = self._vma_starts
        vmas = self.vmas
        stores = self._stores
        add = cum.__add__
        while start < end:
            area = vmas[bisect_right(starts, start) - 1]
            hi = end if end < area.end else area.end
            store = stores[area.vma_id]
            a = start - area.start
            b = hi - area.start
            if isinstance(store, dict):
                get = store.get
                for off in range(a, b):
                    store[off] = get(off, 0) + cum
            else:
                store[a:b] = array("Q", map(add, store[a:b]))
            start = hi

    def page_version(self, vpn: int) -> int:
        self._flush_versions()
        area = self.find_vma(vpn)
        if area is None:
            raise KeyError(vpn)
        store = self._stores[area.vma_id]
        off = vpn - area.start
        if isinstance(store, dict):
            return store.get(off, 0)
        return store[off]

    def is_dirty(self, vpn: int) -> bool:
        return vpn in self._dirty

    # -- dirty tracking (what mig_mod's tracking loop consumes) --------------
    def dirty_pages(self) -> list[int]:
        """Sorted list of pages with the dirty bit set (cached view).

        The returned list is shared until the next dirty-state change;
        callers must not mutate it.
        """
        cache = self._dirty_cache
        if cache is None:
            cache = self._dirty.pages()
            self._dirty_cache = cache
        return cache

    def dirty_extents(self) -> list[tuple[int, int]]:
        """Sorted disjoint ``(start, end)`` runs of dirty pages."""
        return self._dirty.extents()

    def dirty_count(self) -> int:
        return len(self._dirty)

    def clear_dirty(self, vpns: Optional[list[int]] = None) -> None:
        """Clear dirty bits (all, or just the dumped subset)."""
        if vpns is None:
            self._dirty.clear()
        else:
            for start, end in _coalesce(vpns):
                self._dirty.remove(start, end)
        self._dirty_cache = None

    def clear_dirty_extents(self, extents: list[tuple[int, int]]) -> None:
        """Clear dirty bits for whole runs (the extent-native fast path)."""
        for start, end in extents:
            self._dirty.remove(start, end)
        self._dirty_cache = None

    def _run_views(self, start: int, end: int):
        """Yield ``(run_range, version_view)`` pairs covering ``[start, end)``.

        The view is a zero-copy memoryview slice of the backing array
        (or a materialized list for a sparse store), split at VMA
        boundaries.  Callers must consume it before the next mutation.
        """
        starts = self._vma_starts
        vmas = self.vmas
        stores = self._stores
        while start < end:
            area = vmas[bisect_right(starts, start) - 1]
            hi = end if end < area.end else area.end
            store = stores[area.vma_id]
            a = start - area.start
            b = hi - area.start
            if isinstance(store, dict):
                get = store.get
                yield range(start, hi), [get(off, 0) for off in range(a, b)]
            else:
                yield range(start, hi), memoryview(store)[a:b]
            start = hi

    def dirty_version_map(self) -> dict[int, int]:
        """``{vpn: version}`` for every dirty page, built run-at-a-time
        from memoryview slices over the page stores."""
        self._flush_versions()
        out: dict[int, int] = {}
        update = out.update
        for start, end in self._dirty.extents():
            for seg, view in self._run_views(start, end):
                update(zip(seg, view))
        return out

    def dirty_version_runs(self) -> list[tuple[int, "array[int]"]]:
        """Dirty pages as ``(start, versions)`` runs.

        The versions are *copied* out of the backing stores (``array``
        slices), so the returned runs are a stable dump snapshot:
        workload writes after the dump never alias into it.
        """
        self._flush_versions()
        out: list[tuple[int, array]] = []
        for start, end in self._dirty.extents():
            for seg, view in self._run_views(start, end):
                out.append((seg.start, array("Q", view)))
        return out

    # -- post-copy residency (pages mapped but not yet fetched) --------------
    def mark_absent(self, extents: list[tuple[int, int]]) -> None:
        """Mark ``(start, end)`` runs as mapped-but-not-resident."""
        for start, end in extents:
            self._absent.add(start, end)

    def mark_present(self, start: int, end: int) -> int:
        """Mark ``[start, end)`` resident; returns pages newly present."""
        return self._absent.remove(start, end)

    def absent_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Absent runs clipped to ``[start, end)``."""
        return self._absent.intersect(start, end) if self._absent else []

    def absent_extents(self) -> list[tuple[int, int]]:
        return self._absent.extents()

    @property
    def absent_count(self) -> int:
        return len(self._absent)

    @property
    def has_absent(self) -> bool:
        return bool(self._absent)

    def install_pages(self, pages: dict[int, int]) -> None:
        """Install fetched page contents (post-copy demand/push path).

        Versions land exactly as sent, the pages become resident, and
        they stay *clean* — installing remote contents is not a local
        store, so a subsequent migration away must not re-send them
        unless the workload writes them again.
        """
        if not pages:
            return
        starts = self._vma_starts
        vmas = self.vmas
        stores = self._stores
        get_page = pages.__getitem__
        for start, end in _coalesce(list(pages)):
            self._absent.remove(start, end)
            while start < end:
                area = vmas[bisect_right(starts, start) - 1]
                hi = end if end < area.end else area.end
                store = stores[area.vma_id]
                a = start - area.start
                if isinstance(store, dict):
                    for vpn in range(start, hi):
                        store[vpn - area.start] = pages[vpn]
                else:
                    store[a:hi - area.start] = array(
                        "Q", map(get_page, range(start, hi))
                    )
                start = hi

    # -- whole-space views ------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return sum(a.npages for a in self.vmas)

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def iter_pages(self) -> Iterator[int]:
        for area in self.vmas:
            yield from area.pages()

    def content_snapshot(self) -> dict[int, int]:
        """vpn -> version for every mapped page (test/restore helper)."""
        self._flush_versions()
        out: dict[int, int] = {}
        for area in self.vmas:
            store = self._stores[area.vma_id]
            if isinstance(store, dict):
                get = store.get
                out.update(
                    (vpn, get(vpn - area.start, 0)) for vpn in area.pages()
                )
            else:
                out.update(zip(area.pages(), store))
        return out

    def load_snapshot(
        self,
        vmas: list[tuple[int, int, str, str]],
        versions: dict[int, int],
    ) -> None:
        """Rebuild this (empty) space from checkpointed state."""
        if self.vmas:
            raise RuntimeError("load_snapshot requires an empty address space")
        for start, end, perms, tag in vmas:
            area = VMArea(start, end, perms, tag)
            insort(self.vmas, area, key=lambda a: a.start)
        self._vma_starts = [a.start for a in self.vmas]
        get = versions.get
        self._stores = {}
        for area in self.vmas:
            area._space = self
            npages = area.end - area.start
            if npages >= _DENSE_LIMIT_PAGES:
                store: PageStore = {
                    vpn - area.start: ver
                    for vpn, ver in versions.items()
                    if area.start <= vpn < area.end and ver
                }
            else:
                store = array("Q", (get(vpn, 0) for vpn in area.pages()))
            self._stores[area.vma_id] = store
        self._pending = {}
        self._dirty = ExtentSet()
        self._absent = ExtentSet()
        self._dirty_cache = None
        self.map_version += 1
        if self.vmas:
            self._next_free_page = max(a.end for a in self.vmas) + 16


def extents_of(vpns: list[int]) -> list[tuple[int, int]]:
    """Coalesce a page-number list into sorted ``(start, end)`` runs."""
    return list(_coalesce(vpns))


def _coalesce(vpns: list[int]) -> Iterator[tuple[int, int]]:
    """Group a page-number list into sorted ``(start, end)`` runs."""
    if not vpns:
        return
    ordered = vpns
    prev = ordered[0]
    for vpn in ordered:
        if vpn < prev:
            ordered = sorted(vpns)
            break
        prev = vpn
    start = prev = ordered[0]
    for vpn in ordered[1:]:
        if vpn == prev or vpn == prev + 1:
            prev = vpn
            continue
        yield (start, prev + 1)
        start = prev = vpn
    yield (start, prev + 1)
