"""Process address spaces: VMA lists and extent-based dirty tracking.

The live-migration mechanism needs two things from memory management
(Section V-A):

1. *dirty-page tracking* between precopy rounds — we model the page-table
   dirty bit directly: every simulated write sets it, and the checkpoint
   code clears it after dumping;
2. *address-space change tracking* — insertions, modifications and
   removals of mapped areas, which Linux keeps as a ``vm_area_struct``
   list.  The migration module maintains its own tracking list and diffs
   it against the live list each round (see :mod:`repro.core.tracking`).

Pages carry a monotonically increasing *version* instead of data, so
tests can assert exactly which page contents reached the destination.

Representation.  Workloads write *ranges* (``write_range``), so the
write path is batched instead of per-page:

* dirty bits live in an :class:`ExtentSet` — sorted, disjoint half-open
  ``[start, end)`` runs kept as a flat boundary list, so marking a range
  dirty is an O(log n) interval merge rather than a per-page loop;
* versions stay in a per-page dict (the dump wire format is per-page
  anyway), but writes only record ``+1 at start, -1 at end`` boundary
  deltas — a difference array — and the dict is *materialized lazily*
  at read/dump time by one sweep over the accumulated boundaries.
  Re-dirtying the same hot ranges many times between precopy rounds
  therefore costs O(1) per write and one bump per page per round,
  instead of one bump per page per write.

The VMA list is kept sorted by ``start`` with a parallel key list, so
``find_vma``/``_insert``/``resize`` are O(log n) bisects with
neighbour-only overlap checks instead of linear scans.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .costs import PAGE_SIZE

__all__ = ["VMArea", "AddressSpace", "ExtentSet", "PAGE_SIZE", "extents_of"]

_vma_ids = itertools.count(1)


@dataclass
class VMArea:
    """A contiguous mapped region, analogous to ``vm_area_struct``.

    ``start``/``end`` are page numbers (end exclusive).  Identity is by
    ``vma_id`` so that a *moved or resized* area is recognized as a
    modification, not a remove+insert.
    """

    start: int
    end: int
    perms: str = "rw"
    tag: str = ""
    vma_id: int = field(default_factory=lambda: next(_vma_ids))

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty VMA [{self.start}, {self.end})")

    @property
    def npages(self) -> int:
        return self.end - self.start

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def pages(self) -> range:
        return range(self.start, self.end)

    def snapshot(self) -> tuple[int, int, int, str]:
        """Hashable view (vma_id, start, end, perms) for tracking diffs."""
        return (self.vma_id, self.start, self.end, self.perms)

    def __str__(self) -> str:
        return f"vma#{self.vma_id}[{self.start},{self.end}) {self.perms} {self.tag}"


class ExtentSet:
    """A set of page numbers stored as sorted disjoint half-open runs.

    The runs live in one flat boundary list ``[s0, e0, s1, e1, ...]``
    with ``s0 < e0 < s1 < e1 < ...`` (touching runs are merged), so
    membership is a single :func:`bisect_right` — an odd insertion point
    means *inside a run* — and adding or removing a range merges or
    splits at most two boundary runs.
    """

    __slots__ = ("_b", "_count")

    def __init__(self) -> None:
        self._b: list[int] = []
        self._count = 0

    def __contains__(self, vpn: int) -> bool:
        return bisect_right(self._b, vpn) & 1 == 1

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def add(self, start: int, end: int) -> int:
        """Add ``[start, end)``; returns the number of newly-added pages."""
        if end <= start:
            return 0
        b = self._b
        lo = bisect_left(b, start)
        hi = bisect_right(b, end)
        left = b[lo - 1] if lo & 1 else start
        right = b[hi] if hi & 1 else end
        lo -= lo & 1
        hi += hi & 1
        swallowed = b[lo:hi]
        prev = 0
        for i in range(0, len(swallowed), 2):
            prev += swallowed[i + 1] - swallowed[i]
        b[lo:hi] = (left, right)
        added = (right - left) - prev
        self._count += added
        return added

    def remove(self, start: int, end: int) -> int:
        """Remove ``[start, end)``; returns the number of pages removed."""
        if end <= start or not self._b:
            return 0
        removed = self.covered(start, end)
        if removed == 0:
            return 0
        b = self._b
        lo = bisect_right(b, start)
        hi = bisect_left(b, end)
        new_bounds = []
        if lo & 1:
            if start > b[lo - 1]:
                new_bounds.append(start)
            else:
                lo -= 1  # run starts exactly at ``start``: drop it whole
        if hi & 1:
            if end < b[hi]:
                new_bounds.append(end)
            else:
                hi += 1  # run ends exactly at ``end``: drop it whole
        b[lo:hi] = new_bounds
        self._count -= removed
        return removed

    def covered(self, start: int, end: int) -> int:
        """Number of member pages inside ``[start, end)``."""
        b = self._b
        i = bisect_right(b, start)
        i -= i & 1
        total = 0
        n = len(b)
        while i < n and b[i] < end:
            lo = b[i] if b[i] > start else start
            hi = b[i + 1] if b[i + 1] < end else end
            if hi > lo:
                total += hi - lo
            i += 2
        return total

    def clear(self) -> None:
        self._b.clear()
        self._count = 0

    def extents(self) -> list[tuple[int, int]]:
        """Sorted disjoint ``(start, end)`` runs."""
        b = self._b
        return [(b[i], b[i + 1]) for i in range(0, len(b), 2)]

    def pages(self) -> list[int]:
        """Sorted member pages, materialized."""
        out: list[int] = []
        b = self._b
        for i in range(0, len(b), 2):
            out.extend(range(b[i], b[i + 1]))
        return out

    def intersect(self, start: int, end: int) -> list[tuple[int, int]]:
        """Member runs clipped to ``[start, end)``."""
        out: list[tuple[int, int]] = []
        b = self._b
        i = bisect_right(b, start)
        i -= i & 1
        n = len(b)
        while i < n and b[i] < end:
            lo = b[i] if b[i] > start else start
            hi = b[i + 1] if b[i + 1] < end else end
            if hi > lo:
                out.append((lo, hi))
            i += 2
        return out


class AddressSpace:
    """Per-process memory: sorted VMA list + batched dirty/version state."""

    def __init__(self) -> None:
        #: Ordered by start page, non-overlapping.
        self.vmas: list[VMArea] = []
        #: Parallel sorted key list (``vma.start`` never mutates in place).
        self._vma_starts: list[int] = []
        #: vpn -> version (bumped on every write).  Presence == mapped.
        #: Lags behind by the deltas in :attr:`_pending`; every reader
        #: goes through :meth:`_flush_versions` first.
        self._versions: dict[int, int] = {}
        #: Difference array of unapplied writes: boundary -> delta
        #: (``+1`` at each written range's start, ``-1`` at its end).
        self._pending: dict[int, int] = {}
        #: Pages with the dirty bit set, run-length encoded.
        self._dirty = ExtentSet()
        #: Pages mapped but not resident (post-copy migration: the VMA
        #: exists, the contents have not arrived yet).  Empty for every
        #: process outside an in-flight post-copy restore, so the guard
        #: in the write path is one cheap truthiness check.
        self._absent = ExtentSet()
        #: Cached result of :meth:`dirty_pages`; invalidated on any
        #: dirty-state change so repeated reads in the precopy loop are
        #: free (treat the returned list as read-only).
        self._dirty_cache: Optional[list[int]] = None
        #: Bumped whenever the VMA *map* changes (mmap/munmap/resize/
        #: load_snapshot).  The migration tracker compares this against
        #: its last-seen value to skip the diff scan entirely.
        self.map_version = 0
        self._next_free_page = 0x1000  # arbitrary non-zero base

    # -- mapping ------------------------------------------------------------
    def mmap(self, npages: int, perms: str = "rw", tag: str = "") -> VMArea:
        """Map a fresh area at the next free range (allocations)."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        start = self._next_free_page
        self._next_free_page += npages + 16  # guard gap
        area = VMArea(start, start + npages, perms, tag)
        self._insert(area)
        return area

    def _insert(self, area: VMArea) -> None:
        idx = bisect_right(self._vma_starts, area.start)
        if idx > 0 and self.vmas[idx - 1].end > area.start:
            raise ValueError(f"{area} overlaps {self.vmas[idx - 1]}")
        if idx < len(self.vmas) and self.vmas[idx].start < area.end:
            raise ValueError(f"{area} overlaps {self.vmas[idx]}")
        self.vmas.insert(idx, area)
        self._vma_starts.insert(idx, area.start)
        # Newly mapped pages are dirty: they never reached the destination.
        self._versions.update(dict.fromkeys(area.pages(), 0))
        self._dirty.add(area.start, area.end)
        self._dirty_cache = None
        self.map_version += 1

    def munmap(self, area: VMArea) -> None:
        """Unmap an area (frees)."""
        idx = bisect_left(self._vma_starts, area.start)
        if idx >= len(self.vmas) or self.vmas[idx] != area:
            raise ValueError(f"{area} is not mapped")
        del self.vmas[idx]
        del self._vma_starts[idx]
        self._flush_versions()  # before the keys the sweep relies on go away
        pop = self._versions.pop
        for vpn in area.pages():
            pop(vpn, None)
        self._dirty.remove(area.start, area.end)
        if self._absent:
            self._absent.remove(area.start, area.end)
        self._dirty_cache = None
        self.map_version += 1

    def resize(self, area: VMArea, new_npages: int) -> None:
        """Grow or shrink an area in place (mremap-style modification)."""
        if new_npages <= 0:
            raise ValueError("new size must be positive")
        old_end = area.end
        new_end = area.start + new_npages
        if new_end > old_end:
            idx = bisect_right(self._vma_starts, area.start)
            if idx < len(self.vmas) and self.vmas[idx].start < new_end:
                raise ValueError("resize would overlap a neighbouring VMA")
            self._versions.update(dict.fromkeys(range(old_end, new_end), 0))
            self._dirty.add(old_end, new_end)
        elif new_end < old_end:
            self._flush_versions()
            pop = self._versions.pop
            for vpn in range(new_end, old_end):
                pop(vpn, None)
            self._dirty.remove(new_end, old_end)
            if self._absent:
                self._absent.remove(new_end, old_end)
        area.end = new_end
        self._dirty_cache = None
        self.map_version += 1

    def find_vma(self, vpn: int) -> Optional[VMArea]:
        idx = bisect_right(self._vma_starts, vpn) - 1
        if idx >= 0:
            area = self.vmas[idx]
            if vpn < area.end:
                return area
        return None

    # -- page access ----------------------------------------------------------
    def write_page(self, vpn: int) -> None:
        """Simulate a store to a page: sets the dirty bit, bumps version."""
        if vpn not in self._versions:
            raise ValueError(f"page fault: page {vpn:#x} is not mapped")
        if self._absent and vpn in self._absent:
            raise ValueError(f"page fault: page {vpn:#x} is not resident")
        pending = self._pending
        pending[vpn] = pending.get(vpn, 0) + 1
        end = vpn + 1
        pending[end] = pending.get(end, 0) - 1
        self._dirty.add(vpn, end)
        self._dirty_cache = None

    def write_range(self, area: VMArea, count: int, offset: int = 0) -> None:
        """Write ``count`` consecutive pages of ``area`` starting at offset.

        O(log n): two boundary-delta bumps for the versions plus one
        extent merge for the dirty bits, regardless of ``count``.
        """
        if offset < 0 or offset + count > area.npages:
            raise ValueError("write range outside area")
        if count <= 0:
            return
        start = area.start + offset
        end = start + count
        live = self.find_vma(start)
        if live is None or end > live.end:
            vpn = start if live is None else live.end
            raise ValueError(f"page fault: page {vpn:#x} is not mapped")
        if self._absent and self._absent.covered(start, end):
            vpn = self._absent.intersect(start, end)[0][0]
            raise ValueError(f"page fault: page {vpn:#x} is not resident")
        pending = self._pending
        pending[start] = pending.get(start, 0) + 1
        pending[end] = pending.get(end, 0) - 1
        self._dirty.add(start, end)
        self._dirty_cache = None

    def _flush_versions(self) -> None:
        """Fold the pending write deltas into the version dict.

        One sorted sweep over the recorded boundaries; each segment with
        a positive cumulative delta is bumped in one C-level
        zip/map/update pipeline.  N writes to the same hot range between
        flushes collapse into a single +N bump per page.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = {}
        versions = self._versions
        get = versions.__getitem__
        cum = 0
        prev = 0
        for bound in sorted(pending):
            if cum > 0:
                seg = range(prev, bound)
                versions.update(zip(seg, map(cum.__add__, map(get, seg))))
            cum += pending[bound]
            prev = bound
        # Boundary deltas sum to zero, so the sweep always ends at cum == 0.

    def page_version(self, vpn: int) -> int:
        self._flush_versions()
        return self._versions[vpn]

    def is_dirty(self, vpn: int) -> bool:
        return vpn in self._dirty

    # -- dirty tracking (what mig_mod's tracking loop consumes) --------------
    def dirty_pages(self) -> list[int]:
        """Sorted list of pages with the dirty bit set (cached view).

        The returned list is shared until the next dirty-state change;
        callers must not mutate it.
        """
        cache = self._dirty_cache
        if cache is None:
            cache = self._dirty.pages()
            self._dirty_cache = cache
        return cache

    def dirty_extents(self) -> list[tuple[int, int]]:
        """Sorted disjoint ``(start, end)`` runs of dirty pages."""
        return self._dirty.extents()

    def dirty_count(self) -> int:
        return len(self._dirty)

    def clear_dirty(self, vpns: Optional[list[int]] = None) -> None:
        """Clear dirty bits (all, or just the dumped subset)."""
        if vpns is None:
            self._dirty.clear()
        else:
            for start, end in _coalesce(vpns):
                self._dirty.remove(start, end)
        self._dirty_cache = None

    def clear_dirty_extents(self, extents: list[tuple[int, int]]) -> None:
        """Clear dirty bits for whole runs (the extent-native fast path)."""
        for start, end in extents:
            self._dirty.remove(start, end)
        self._dirty_cache = None

    def dirty_version_map(self) -> dict[int, int]:
        """``{vpn: version}`` for every dirty page, built run-at-a-time."""
        self._flush_versions()
        out: dict[int, int] = {}
        get = self._versions.__getitem__
        for start, end in self._dirty.extents():
            seg = range(start, end)
            out.update(zip(seg, map(get, seg)))
        return out

    # -- post-copy residency (pages mapped but not yet fetched) --------------
    def mark_absent(self, extents: list[tuple[int, int]]) -> None:
        """Mark ``(start, end)`` runs as mapped-but-not-resident."""
        for start, end in extents:
            self._absent.add(start, end)

    def mark_present(self, start: int, end: int) -> int:
        """Mark ``[start, end)`` resident; returns pages newly present."""
        return self._absent.remove(start, end)

    def absent_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Absent runs clipped to ``[start, end)``."""
        return self._absent.intersect(start, end) if self._absent else []

    def absent_extents(self) -> list[tuple[int, int]]:
        return self._absent.extents()

    @property
    def absent_count(self) -> int:
        return len(self._absent)

    @property
    def has_absent(self) -> bool:
        return bool(self._absent)

    def install_pages(self, pages: dict[int, int]) -> None:
        """Install fetched page contents (post-copy demand/push path).

        Versions land exactly as sent, the pages become resident, and
        they stay *clean* — installing remote contents is not a local
        store, so a subsequent migration away must not re-send them
        unless the workload writes them again.
        """
        if not pages:
            return
        self._versions.update(pages)
        for start, end in _coalesce(list(pages)):
            self._absent.remove(start, end)

    # -- whole-space views ------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return sum(a.npages for a in self.vmas)

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def iter_pages(self) -> Iterator[int]:
        for area in self.vmas:
            yield from area.pages()

    def content_snapshot(self) -> dict[int, int]:
        """vpn -> version for every mapped page (test/restore helper)."""
        self._flush_versions()
        return dict(self._versions)

    def load_snapshot(
        self,
        vmas: list[tuple[int, int, str, str]],
        versions: dict[int, int],
    ) -> None:
        """Rebuild this (empty) space from checkpointed state."""
        if self.vmas:
            raise RuntimeError("load_snapshot requires an empty address space")
        for start, end, perms, tag in vmas:
            area = VMArea(start, end, perms, tag)
            insort(self.vmas, area, key=lambda a: a.start)
        self._vma_starts = [a.start for a in self.vmas]
        self._versions = dict(versions)
        self._pending = {}
        self._dirty = ExtentSet()
        self._absent = ExtentSet()
        self._dirty_cache = None
        self.map_version += 1
        if self.vmas:
            self._next_free_page = max(a.end for a in self.vmas) + 16


def extents_of(vpns: list[int]) -> list[tuple[int, int]]:
    """Coalesce a page-number list into sorted ``(start, end)`` runs."""
    return list(_coalesce(vpns))


def _coalesce(vpns: list[int]) -> Iterator[tuple[int, int]]:
    """Group a page-number list into sorted ``(start, end)`` runs."""
    if not vpns:
        return
    ordered = vpns
    prev = ordered[0]
    for vpn in ordered:
        if vpn < prev:
            ordered = sorted(vpns)
            break
        prev = vpn
    start = prev = ordered[0]
    for vpn in ordered[1:]:
        if vpn == prev or vpn == prev + 1:
            prev = vpn
            continue
        yield (start, prev + 1)
        start = prev = vpn
    yield (start, prev + 1)
