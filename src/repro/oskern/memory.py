"""Process address spaces: VMA lists and dirty-bit page tracking.

The live-migration mechanism needs two things from memory management
(Section V-A):

1. *dirty-page tracking* between precopy rounds — we model the page-table
   dirty bit directly: every simulated write sets it, and the checkpoint
   code clears it after dumping;
2. *address-space change tracking* — insertions, modifications and
   removals of mapped areas, which Linux keeps as a ``vm_area_struct``
   list.  The migration module maintains its own tracking list and diffs
   it against the live list each round (see :mod:`repro.core.tracking`).

Pages carry a monotonically increasing *version* instead of data, so
tests can assert exactly which page contents reached the destination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .costs import PAGE_SIZE

__all__ = ["VMArea", "AddressSpace", "PAGE_SIZE"]

_vma_ids = itertools.count(1)


@dataclass
class VMArea:
    """A contiguous mapped region, analogous to ``vm_area_struct``.

    ``start``/``end`` are page numbers (end exclusive).  Identity is by
    ``vma_id`` so that a *moved or resized* area is recognized as a
    modification, not a remove+insert.
    """

    start: int
    end: int
    perms: str = "rw"
    tag: str = ""
    vma_id: int = field(default_factory=lambda: next(_vma_ids))

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty VMA [{self.start}, {self.end})")

    @property
    def npages(self) -> int:
        return self.end - self.start

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def pages(self) -> range:
        return range(self.start, self.end)

    def snapshot(self) -> tuple[int, int, int, str]:
        """Hashable view (vma_id, start, end, perms) for tracking diffs."""
        return (self.vma_id, self.start, self.end, self.perms)

    def __str__(self) -> str:
        return f"vma#{self.vma_id}[{self.start},{self.end}) {self.perms} {self.tag}"


class AddressSpace:
    """Per-process memory: ordered VMA list + per-page dirty bits/versions."""

    def __init__(self) -> None:
        #: Ordered by start page, non-overlapping.
        self.vmas: list[VMArea] = []
        #: vpn -> version (bumped on every write).  Presence == mapped+touched.
        self._versions: dict[int, int] = {}
        #: vpn set with the dirty bit set.
        self._dirty: set[int] = set()
        self._next_free_page = 0x1000  # arbitrary non-zero base

    # -- mapping ------------------------------------------------------------
    def mmap(self, npages: int, perms: str = "rw", tag: str = "") -> VMArea:
        """Map a fresh area at the next free range (allocations)."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        start = self._next_free_page
        self._next_free_page += npages + 16  # guard gap
        area = VMArea(start, start + npages, perms, tag)
        self._insert(area)
        return area

    def _insert(self, area: VMArea) -> None:
        for existing in self.vmas:
            if area.start < existing.end and existing.start < area.end:
                raise ValueError(f"{area} overlaps {existing}")
        self.vmas.append(area)
        self.vmas.sort(key=lambda a: a.start)
        # Newly mapped pages are dirty: they never reached the destination.
        for vpn in area.pages():
            self._versions.setdefault(vpn, 0)
            self._dirty.add(vpn)

    def munmap(self, area: VMArea) -> None:
        """Unmap an area (frees)."""
        try:
            self.vmas.remove(area)
        except ValueError:
            raise ValueError(f"{area} is not mapped") from None
        for vpn in area.pages():
            self._versions.pop(vpn, None)
            self._dirty.discard(vpn)

    def resize(self, area: VMArea, new_npages: int) -> None:
        """Grow or shrink an area in place (mremap-style modification)."""
        if new_npages <= 0:
            raise ValueError("new size must be positive")
        old_end = area.end
        new_end = area.start + new_npages
        if new_end > old_end:
            for other in self.vmas:
                if other is not area and area.start < other.end and other.start < new_end:
                    raise ValueError("resize would overlap a neighbouring VMA")
            for vpn in range(old_end, new_end):
                self._versions.setdefault(vpn, 0)
                self._dirty.add(vpn)
        else:
            for vpn in range(new_end, old_end):
                self._versions.pop(vpn, None)
                self._dirty.discard(vpn)
        area.end = new_end

    def find_vma(self, vpn: int) -> Optional[VMArea]:
        for area in self.vmas:
            if area.start <= vpn < area.end:
                return area
        return None

    # -- page access ----------------------------------------------------------
    def write_page(self, vpn: int) -> None:
        """Simulate a store to a page: sets the dirty bit, bumps version."""
        if vpn not in self._versions:
            raise ValueError(f"page fault: page {vpn:#x} is not mapped")
        self._versions[vpn] += 1
        self._dirty.add(vpn)

    def write_range(self, area: VMArea, count: int, offset: int = 0) -> None:
        """Write ``count`` consecutive pages of ``area`` starting at offset."""
        if offset < 0 or offset + count > area.npages:
            raise ValueError("write range outside area")
        for vpn in range(area.start + offset, area.start + offset + count):
            self.write_page(vpn)

    def page_version(self, vpn: int) -> int:
        return self._versions[vpn]

    def is_dirty(self, vpn: int) -> bool:
        return vpn in self._dirty

    # -- dirty tracking (what mig_mod's tracking loop consumes) --------------
    def dirty_pages(self) -> list[int]:
        """Sorted list of pages with the dirty bit set."""
        return sorted(self._dirty)

    def dirty_count(self) -> int:
        return len(self._dirty)

    def clear_dirty(self, vpns: Optional[list[int]] = None) -> None:
        """Clear dirty bits (all, or just the dumped subset)."""
        if vpns is None:
            self._dirty.clear()
        else:
            self._dirty.difference_update(vpns)

    # -- whole-space views ------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return sum(a.npages for a in self.vmas)

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def iter_pages(self) -> Iterator[int]:
        for area in self.vmas:
            yield from area.pages()

    def content_snapshot(self) -> dict[int, int]:
        """vpn -> version for every mapped page (test/restore helper)."""
        return dict(self._versions)

    def load_snapshot(
        self,
        vmas: list[tuple[int, int, str, str]],
        versions: dict[int, int],
    ) -> None:
        """Rebuild this (empty) space from checkpointed state."""
        if self.vmas:
            raise RuntimeError("load_snapshot requires an empty address space")
        for start, end, perms, tag in vmas:
            self.vmas.append(VMArea(start, end, perms, tag))
        self.vmas.sort(key=lambda a: a.start)
        self._versions = dict(versions)
        self._dirty = set()
        if self.vmas:
            self._next_free_page = max(a.end for a in self.vmas) + 16
