"""Cluster topology builder.

Reproduces the experimental framework of Section VI-A: a dedicated
single-IP-address cluster of DVE server nodes (dual-core, Gigabit
Ethernet public + local interfaces), a broadcast router on the public
side, a switch on the cluster side, and a MySQL database server host on
the local network.  Game clients attach to the router with their own
public addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .des import Environment, RngRegistry
from .net import BroadcastRouter, IPAddr, Link, Switch
from .oskern import CostModel, Host

__all__ = ["ClusterConfig", "Cluster", "build_cluster"]


@dataclass
class ClusterConfig:
    """Knobs for the simulated testbed."""

    n_nodes: int = 5
    public_ip: str = "203.0.113.10"
    local_subnet: str = "192.168.0."
    db_host_octet: int = 200
    #: Gigabit Ethernet on both sides, per the paper's testbed.
    public_bandwidth: float = 1e9
    local_bandwidth: float = 1e9
    #: One-way latencies: LAN-scale inside the cluster, larger to clients.
    local_latency: float = 25e-6
    public_latency: float = 60e-6
    client_latency: float = 5e-3
    cores: int = 2
    with_db: bool = True
    master_seed: int = 42
    #: Per-node jiffies boot offsets are drawn from [0, jiffies_spread).
    jiffies_spread: int = 5_000_000
    cost_model: CostModel = field(default_factory=CostModel)
    #: Router class; swap in UnicastRouter for the NAT negative control.
    broadcast: bool = True


class Cluster:
    """The wired-up testbed."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        self.env = Environment()
        self.rng = RngRegistry(cfg.master_seed)
        if cfg.broadcast:
            self.router = BroadcastRouter(self.env)
        else:
            from .net import UnicastRouter

            self.router = UnicastRouter(self.env)
        self.switch = Switch(self.env)
        self.public_ip = IPAddr(cfg.public_ip)
        self.nodes: list[Host] = []
        self.public_links: list[Link] = []
        self.local_links: dict[str, Link] = {}
        self.clients: list[Host] = []
        self.client_links: dict[IPAddr, Link] = {}
        self.db: Optional[Host] = None

        jiffies_rng = self.rng.stream("jiffies")
        for i in range(cfg.n_nodes):
            name = f"node{i + 1}"
            local_ip = IPAddr(f"{cfg.local_subnet}{i + 1}")
            node = Host(
                self.env,
                name,
                public_ip=self.public_ip,
                local_ip=local_ip,
                cores=cfg.cores,
                jiffies_offset=int(jiffies_rng.integers(0, cfg.jiffies_spread)),
                cost_model=cfg.cost_model,
                local_prefix=cfg.local_subnet,
            )
            pub_link = Link(
                self.env, cfg.public_bandwidth, cfg.public_latency, name=f"{name}-pub"
            )
            self.router.add_server_port(pub_link)
            node.public_iface.connect(pub_link, side=1)
            self.public_links.append(pub_link)

            loc_link = Link(
                self.env, cfg.local_bandwidth, cfg.local_latency, name=f"{name}-loc"
            )
            self.switch.add_port(local_ip, loc_link)
            node.local_iface.connect(loc_link, side=1)
            self.local_links[name] = loc_link
            # transd "is present on all nodes inside the cluster that
            # may be involved in a local socket migration" (Sec. II-B).
            from .core.translation import install_transd

            install_transd(node)
            self.nodes.append(node)

        if cfg.with_db:
            db_ip = IPAddr(f"{cfg.local_subnet}{cfg.db_host_octet}")
            self.db = Host(
                self.env,
                "dbserver",
                local_ip=db_ip,
                cores=cfg.cores,
                jiffies_offset=int(jiffies_rng.integers(0, cfg.jiffies_spread)),
                cost_model=cfg.cost_model,
                local_prefix=cfg.local_subnet,
            )
            db_link = Link(
                self.env, cfg.local_bandwidth, cfg.local_latency, name="db-loc"
            )
            self.switch.add_port(db_ip, db_link)
            self.db.local_iface.connect(db_link, side=1)
            self.local_links["dbserver"] = db_link
            from .core.translation import install_transd

            install_transd(self.db)

    # -- observability -------------------------------------------------------
    def enable_metrics(self) -> list[str]:
        """Turn on the metrics registry and install the per-node
        ``node.<ip>.*`` samplers for every cluster host (server nodes and
        the database host).  Returns the registered metric names.
        Idempotent; clients attached later are not sampled."""
        from .obs.samplers import install_node_samplers

        self.env.enable_metrics()
        return install_node_samplers(self)

    # -- middleware ----------------------------------------------------------
    def install_balancers(self, config=None) -> list:
        """Install a conductor on every server node and return them.

        Convenience wiring used by benches, examples and tests: each
        conductor scans the other nodes' local addresses and resolves
        receivers through :meth:`node_by_local_ip`.  Pass a
        ``ConductorConfig`` to select a strategy
        (``config.strategy="workload-balance-to-average"`` etc.);
        each node deep-shares the same config object, as the per-node
        rng stream is derived from the config seed *and* the node
        address.  Idempotent per node (``install_conductor`` returns an
        existing daemon).
        """
        from .middleware import install_conductor

        scan_ips = [n.local_ip for n in self.nodes]
        return [
            install_conductor(node, scan_ips, self.node_by_local_ip, config)
            for node in self.nodes
        ]

    # -- clients ------------------------------------------------------------
    def client_ip(self, index: int) -> IPAddr:
        """Deterministic public address for the index-th client."""
        if index < 0 or index >= 30_000:
            raise ValueError("client index out of range")
        return IPAddr(f"198.51.{100 + index // 200}.{index % 200 + 1}")

    def add_client(self, name: Optional[str] = None, index: Optional[int] = None) -> Host:
        """Create a client host and attach it to the broadcast router."""
        if index is None:
            index = len(self.clients)
        ip = self.client_ip(index)
        cfg = self.config
        client = Host(
            self.env,
            name or f"client{index}",
            public_ip=ip,
            cores=1,
            jiffies_offset=int(self.rng.stream("client-jiffies").integers(0, cfg.jiffies_spread)),
            cost_model=cfg.cost_model,
            local_prefix=cfg.local_subnet,
        )
        link = Link(self.env, cfg.public_bandwidth, cfg.client_latency, name=f"{client.name}-link")
        self.router.add_client_port(ip, link)
        client.public_iface.connect(link, side=1)
        self.clients.append(client)
        self.client_links[ip] = link
        return client

    # -- lookups -------------------------------------------------------------
    def node(self, index: int) -> Host:
        return self.nodes[index]

    def node_by_name(self, name: str) -> Host:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def node_by_local_ip(self, ip: IPAddr) -> Host:
        for node in self.nodes:
            if node.local_ip == ip:
                return node
        raise KeyError(str(ip))

    def all_hosts(self) -> list[Host]:
        hosts = list(self.nodes) + list(self.clients)
        if self.db is not None:
            hosts.append(self.db)
        return hosts


def build_cluster(**overrides) -> Cluster:
    """Convenience: build a cluster with config overrides as kwargs."""
    return Cluster(ClusterConfig(**overrides))
