"""Shared fixtures and helpers for tests, examples and benchmarks.

These are *simulation-building* helpers, not assertions: establishing
client connections through the broadcast router, draining accept loops,
and driving simple echo traffic.
"""

from __future__ import annotations

from typing import Optional

from .cluster import Cluster
from .net import Endpoint
from .oskern import Host, RpcError, SimProcess
from .tcpip import TCPSocket

__all__ = [
    "accept_all",
    "establish_clients",
    "connect_local_tcp",
    "run_for",
    "start_dirtier",
]


def run_for(cluster: Cluster, duration: float) -> None:
    """Advance the simulation by ``duration`` seconds."""
    cluster.env.run(until=cluster.env.now + duration)


def start_dirtier(
    cluster: Cluster,
    proc: SimProcess,
    area,
    count: int,
    interval: float = 0.05,
    offset: int = 0,
) -> dict:
    """Spawn a write-hot workload: every ``interval``, write ``count``
    pages of ``area`` through the fault-aware
    :meth:`~repro.oskern.task.SimProcess.touch_range` path.

    Unlike a bare ``write_range`` loop this one behaves like a real
    application under migration: it pauses while frozen, blocks on
    demand fetches after a post-copy thaw, and slows down while
    auto-convergence throttles the process (the tick interval stretches
    by the inverse of the CPU share).  Returns a live stats dict with
    ``ticks`` (completed write bursts), ``faulted`` (bursts that hit at
    least one non-resident page) and ``errors`` (aborted post-copy
    fetches, which also stop the workload).
    """
    stats = {"ticks": 0, "faulted": 0, "errors": 0}

    def loop():
        while True:
            yield cluster.env.timeout(interval / max(proc.cpu_throttle, 1e-6))
            had_absent = proc.address_space.has_absent
            try:
                yield from proc.touch_range(area, count, offset)
            except RpcError:
                stats["errors"] += 1
                return
            stats["ticks"] += 1
            if had_absent:
                stats["faulted"] += 1

    cluster.env.process(loop(), name=f"dirtier-{proc.pid}")
    return stats


def accept_all(cluster: Cluster, listener: TCPSocket, out: list) -> None:
    """Spawn a DES process that keeps accepting into ``out``."""

    def loop():
        while True:
            child = yield listener.accept()
            out.append(child)

    cluster.env.process(loop(), name="accept-loop")


def establish_clients(
    cluster: Cluster,
    server_node: Host,
    proc: Optional[SimProcess],
    port: int,
    n_clients: int,
    settle: float = 1.0,
) -> tuple[TCPSocket, list[TCPSocket], list[TCPSocket]]:
    """Create ``n_clients`` client hosts, connect each to a listener on
    ``server_node``/``port`` through the broadcast router, and run the
    simulation until all handshakes complete.

    Returns (listener, server_children, client_sockets).
    """
    listener = server_node.stack.tcp_socket(proc)
    listener.bind(port, ip=server_node.public_ip)
    listener.listen()
    children: list[TCPSocket] = []
    accept_all(cluster, listener, children)

    client_socks: list[TCPSocket] = []
    events = []
    for _ in range(n_clients):
        client = cluster.add_client()
        csock = client.stack.tcp_socket()
        events.append(csock.connect(Endpoint(cluster.public_ip, port)))
        client_socks.append(csock)

    run_for(cluster, settle)
    pending = [e for e in events if not e.triggered]
    if pending or len(children) != n_clients:
        raise RuntimeError(
            f"handshakes incomplete: {len(children)}/{n_clients} accepted, "
            f"{len(pending)} connects pending after {settle}s"
        )
    return listener, children, client_socks


def connect_local_tcp(
    cluster: Cluster,
    client_host: Host,
    proc: Optional[SimProcess],
    server_host: Host,
    server_proc: Optional[SimProcess],
    port: int,
    settle: float = 0.1,
) -> tuple[TCPSocket, TCPSocket]:
    """Establish one in-cluster TCP connection (e.g. zone server ->
    MySQL).  Returns (client_side_socket, server_side_socket)."""
    listener = server_host.stack.tcp_socket(server_proc)
    listener.bind(port, ip=server_host.local_ip)
    listener.listen()
    children: list[TCPSocket] = []
    accept_all(cluster, listener, children)

    csock = client_host.stack.tcp_socket(proc)
    ev = csock.connect(Endpoint(server_host.local_ip, port))
    run_for(cluster, settle)
    if not ev.triggered or not children:
        raise RuntimeError("local TCP handshake did not complete")
    listener.close()
    return csock, children[0]
