"""Shared fixtures and helpers for tests, examples and benchmarks.

These are *simulation-building* helpers, not assertions: establishing
client connections through the broadcast router, draining accept loops,
and driving simple echo traffic.
"""

from __future__ import annotations

from typing import Optional

from .cluster import Cluster
from .net import Endpoint
from .oskern import Host, SimProcess
from .tcpip import TCPSocket

__all__ = [
    "accept_all",
    "establish_clients",
    "connect_local_tcp",
    "run_for",
    "start_dirtier",
]


def run_for(cluster: Cluster, duration: float) -> None:
    """Advance the simulation by ``duration`` seconds."""
    cluster.env.run(until=cluster.env.now + duration)


def start_dirtier(
    cluster: Cluster,
    proc: SimProcess,
    area,
    count: int,
    interval: float = 0.05,
    offset: int = 0,
) -> dict:
    """Spawn a write-hot workload: every ``interval``, write ``count``
    pages of ``area`` through the fault-aware
    :meth:`~repro.oskern.task.SimProcess.touch_range` path.

    Thin veneer over :func:`repro.scenarios.workload.start_dirtier`
    (where the loop lives as the reusable :class:`~repro.scenarios.
    primitives.HotSet` workload primitive); kept here so tests and
    benches keep their one-import fixture.  Returns the live stats dict
    with ``ticks``, ``faulted`` and ``errors``.
    """
    from .scenarios.workload import HotSet
    from .scenarios.workload import start_dirtier as _start

    return _start(
        cluster.env, proc, area, HotSet(pages=count, interval=interval, offset=offset)
    )


def accept_all(cluster: Cluster, listener: TCPSocket, out: list) -> None:
    """Spawn a DES process that keeps accepting into ``out``."""

    def loop():
        while True:
            child = yield listener.accept()
            out.append(child)

    cluster.env.process(loop(), name="accept-loop")


def establish_clients(
    cluster: Cluster,
    server_node: Host,
    proc: Optional[SimProcess],
    port: int,
    n_clients: int,
    settle: float = 1.0,
) -> tuple[TCPSocket, list[TCPSocket], list[TCPSocket]]:
    """Create ``n_clients`` client hosts, connect each to a listener on
    ``server_node``/``port`` through the broadcast router, and run the
    simulation until all handshakes complete.

    Returns (listener, server_children, client_sockets).
    """
    listener = server_node.stack.tcp_socket(proc)
    listener.bind(port, ip=server_node.public_ip)
    listener.listen()
    children: list[TCPSocket] = []
    accept_all(cluster, listener, children)

    client_socks: list[TCPSocket] = []
    events = []
    for _ in range(n_clients):
        client = cluster.add_client()
        csock = client.stack.tcp_socket()
        events.append(csock.connect(Endpoint(cluster.public_ip, port)))
        client_socks.append(csock)

    run_for(cluster, settle)
    pending = [e for e in events if not e.triggered]
    if pending or len(children) != n_clients:
        raise RuntimeError(
            f"handshakes incomplete: {len(children)}/{n_clients} accepted, "
            f"{len(pending)} connects pending after {settle}s"
        )
    return listener, children, client_socks


def connect_local_tcp(
    cluster: Cluster,
    client_host: Host,
    proc: Optional[SimProcess],
    server_host: Host,
    server_proc: Optional[SimProcess],
    port: int,
    settle: float = 0.1,
) -> tuple[TCPSocket, TCPSocket]:
    """Establish one in-cluster TCP connection (e.g. zone server ->
    MySQL).  Returns (client_side_socket, server_side_socket)."""
    listener = server_host.stack.tcp_socket(server_proc)
    listener.bind(port, ip=server_host.local_ip)
    listener.listen()
    children: list[TCPSocket] = []
    accept_all(cluster, listener, children)

    csock = client_host.stack.tcp_socket(proc)
    ev = csock.connect(Endpoint(server_host.local_ip, port))
    run_for(cluster, settle)
    if not ev.triggered or not children:
        raise RuntimeError("local TCP handshake did not complete")
    listener.close()
    return csock, children[0]
