"""``repro-campaign`` — run the standing chaos-campaign suite.

Subcommands::

    repro-campaign list
    repro-campaign describe <name-or-file>
    repro-campaign run <name-or-file>... [--quick] [--seed N]
                       [--out DIR] [--trace]

Exit codes follow the ``repro-trace`` conventions: 0 all SLOs passed,
1 at least one campaign's SLO verdict failed, 3 malformed
scenario/campaign spec (the error message carries
``path:lineno:token: reason``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .campaign import (
    Campaign,
    campaign_names,
    get_campaign,
    parse_campaign,
    run_campaign,
)
from .dsl import ScenarioParseError

__all__ = ["main"]


def _load(ref: str) -> Campaign:
    """Resolve a campaign by registry name or by file path."""
    if ref in campaign_names():
        return get_campaign(ref)
    path = Path(ref)
    if path.exists():
        return parse_campaign(path.read_text(), path=str(path))
    raise ScenarioParseError(
        ref, 0, ref,
        f"neither a named campaign ({', '.join(campaign_names())}) nor a file",
    )


def _cmd_list(_args) -> int:
    for name in campaign_names():
        campaign = get_campaign(name)
        faults = f"{len(campaign.faults)} fault(s)" if len(campaign.faults) else "no faults"
        print(f"{name:26s} {campaign.strategy:28s} {faults}, {len(campaign.slos)} SLO rule(s)")
    return 0


def _cmd_describe(args) -> int:
    print(_load(args.campaign).describe(), end="")
    return 0


def _cmd_run(args) -> int:
    failed = False
    out = Path(args.out) if args.out else None
    for ref in args.campaigns:
        campaign = _load(ref)
        trace_path = None
        if args.trace:
            trace_dir = out or Path(".")
            trace_dir.mkdir(parents=True, exist_ok=True)
            trace_path = trace_dir / f"campaign_{campaign.name}.trace.jsonl"
        series_path = None
        if out is not None:
            out.mkdir(parents=True, exist_ok=True)
            series_path = out / f"campaign_{campaign.name}.series.csv"
        result = run_campaign(
            campaign,
            quick=args.quick,
            seed=args.seed,
            trace_path=trace_path,
            series_path=series_path,
        )
        print(result.render())
        if trace_path is not None:
            print(f"trace: {trace_path}")
        if out is not None:
            from ..obs.bench import write_bench

            path = write_bench(out, result.bench_doc())
            print(f"bench: {path}")
            print(f"series: {series_path}")
        print()
        if not result.passed:
            failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run seeded workload-scenario x fault-plan campaigns "
        "with SLO verdicts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named campaigns")

    p_desc = sub.add_parser("describe", help="print a campaign document")
    p_desc.add_argument("campaign", help="campaign name or file path")

    p_run = sub.add_parser("run", help="run campaigns and evaluate their SLOs")
    p_run.add_argument("campaigns", nargs="+", help="campaign names or file paths")
    p_run.add_argument("--quick", action="store_true", help="use each campaign's quick duration")
    p_run.add_argument("--seed", type=int, default=None, help="override the campaign seed")
    p_run.add_argument("--out", default=None, help="directory for BENCH documents")
    p_run.add_argument("--trace", action="store_true", help="record and write the JSONL trace")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "describe":
            return _cmd_describe(args)
        return _cmd_run(args)
    except ScenarioParseError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
