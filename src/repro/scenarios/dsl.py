"""One-liner scenario syntax (the workload twin of ``repro.faults.dsl``).

Each non-blank, non-comment line is one directive::

    clients 400
    duration 120
    tick 1
    grid 8x4
    nodes 4
    server cpu_per_client=0.003 cpu_base=0.02 pages=64
    load flash at=30 peak=2.5 ramp=5 hold=10 decay=20
    load diurnal period=60 amp=0.4 phase=0.25
    zones zipf s=1.1
    zones rotate period=60 amp=0.5
    zones corners travel=300 mass=0.7
    background cycle base=0.8 amp=0.4 period=30
    mix churn=0.08 long_lived=0.6
    chain depend gain=0.3 lag=5 stride=1
    dirty hotset pages=40 interval=0.05

The grammar round-trips: :meth:`repro.scenarios.primitives.ScenarioSpec.
describe` emits exactly this syntax and ``parse_scenario(spec.describe())``
rebuilds an equal spec.  ``#`` starts a comment (whole line or trailing).

Malformed input raises :class:`ScenarioParseError`, whose message always
carries ``path:token:reason`` (plus the line number) so a CLI can print
it verbatim and exit 3 — the same convention ``repro-trace`` uses for
unknown report kinds.
"""

from __future__ import annotations

from typing import Optional

from .primitives import (
    BackgroundCycle,
    ConnectionMix,
    CornerDrift,
    DependencyChain,
    DiurnalSine,
    FlashCrowd,
    HotSet,
    RotatingHotspot,
    ScenarioSpec,
    UniformZones,
    ZipfZones,
)

__all__ = ["ScenarioParseError", "parse_scenario", "SHAPE_KINDS", "ZONE_KINDS"]

#: ``load`` sub-verb -> shape class (and its float/int option parsers).
SHAPE_KINDS = {
    "flash": (FlashCrowd, {"at": float, "peak": float, "ramp": float,
                           "hold": float, "decay": float, "zone": int}),
    "diurnal": (DiurnalSine, {"period": float, "amp": float, "phase": float}),
}

#: ``zones`` sub-verb -> weight class and option parsers.
ZONE_KINDS = {
    "uniform": (UniformZones, {}),
    "zipf": (ZipfZones, {"s": float}),
    "rotate": (RotatingHotspot, {"period": float, "amp": float}),
    "corners": (CornerDrift, {"travel": float, "mass": float}),
}

#: ``server`` options mapped onto :class:`ScenarioSpec` fields.
_SERVER_OPTIONS = {
    "cpu_per_client": ("cpu_per_client", float),
    "cpu_base": ("cpu_base", float),
    "pages": ("pages", int),
}


class ScenarioParseError(ValueError):
    """A malformed scenario document.

    ``str()`` is ``<path>:<lineno>:<token>: <reason>`` — path, offending
    token and reason in one grep-able line.
    """

    def __init__(self, path: str, lineno: int, token: str, reason: str) -> None:
        self.path = path
        self.lineno = lineno
        self.token = token
        self.reason = reason
        super().__init__(f"{path}:{lineno}:{token}: {reason}")


class _LineParser:
    """One directive line, with error context baked in."""

    def __init__(self, path: str, lineno: int, line: str) -> None:
        self.path = path
        self.lineno = lineno
        self.tokens = line.split()

    def fail(self, token: str, reason: str) -> "ScenarioParseError":
        return ScenarioParseError(self.path, self.lineno, token, reason)

    def options(self, allowed: dict, start: int = 2) -> dict:
        """Parse trailing ``key=value`` tokens against ``allowed``."""
        verb = " ".join(self.tokens[:start])
        out = {}
        for tok in self.tokens[start:]:
            key, sep, value = tok.partition("=")
            if not sep or key not in allowed:
                raise self.fail(
                    tok,
                    f"unknown option for {verb!r} "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})",
                )
            try:
                out[key] = allowed[key](value)
            except ValueError:
                raise self.fail(tok, f"bad {key} value {value!r}") from None
        return out


def _parse_scalar(p: _LineParser, kind: type, what: str):
    if len(p.tokens) != 2:
        raise p.fail(p.tokens[0], f"expected '{p.tokens[0]} <{what}>'")
    try:
        return kind(p.tokens[1])
    except ValueError:
        raise p.fail(p.tokens[1], f"bad {what} {p.tokens[1]!r}") from None


def parse_scenario(text: str, path: str = "<scenario>") -> ScenarioSpec:
    """Parse a multi-line scenario document into a :class:`ScenarioSpec`.

    ``path`` names the source in error messages.  Blank lines and ``#``
    comments are skipped.  Raises :class:`ScenarioParseError` on any
    malformed directive.
    """
    fields: dict = {}
    shapes = []
    zones = None
    background: Optional[BackgroundCycle] = None
    mix: Optional[ConnectionMix] = None
    chain: Optional[DependencyChain] = None
    hotset: Optional[HotSet] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        p = _LineParser(path, lineno, line)
        verb = p.tokens[0]

        if verb == "clients":
            fields["clients"] = _parse_scalar(p, int, "count")
        elif verb == "duration":
            fields["duration"] = _parse_scalar(p, float, "seconds")
        elif verb == "tick":
            fields["tick"] = _parse_scalar(p, float, "seconds")
        elif verb == "nodes":
            fields["nodes"] = _parse_scalar(p, int, "count")
        elif verb == "grid":
            spec = _parse_scalar(p, str, "COLSxROWS")
            cols, sep, rows = spec.partition("x")
            if not sep or not cols.isdigit() or not rows.isdigit():
                raise p.fail(spec, "grid must be '<cols>x<rows>' (e.g. 8x4)")
            fields["grid_cols"], fields["grid_rows"] = int(cols), int(rows)
        elif verb == "server":
            opts = p.options(
                {k: parse for k, (_f, parse) in _SERVER_OPTIONS.items()}, start=1
            )
            for key, value in opts.items():
                fields[_SERVER_OPTIONS[key][0]] = value
        elif verb == "load":
            if len(p.tokens) < 2:
                raise p.fail(verb, "expected 'load <kind> [key=value ...]'")
            kind = p.tokens[1]
            entry = SHAPE_KINDS.get(kind)
            if entry is None:
                raise p.fail(
                    kind,
                    f"unknown load shape (known: {', '.join(sorted(SHAPE_KINDS))})",
                )
            cls, allowed = entry
            shapes.append(_construct(p, cls, allowed))
        elif verb == "zones":
            if len(p.tokens) < 2:
                raise p.fail(verb, "expected 'zones <kind> [key=value ...]'")
            kind = p.tokens[1]
            entry = ZONE_KINDS.get(kind)
            if entry is None:
                raise p.fail(
                    kind,
                    f"unknown zone weighting (known: {', '.join(sorted(ZONE_KINDS))})",
                )
            if zones is not None:
                raise p.fail(kind, "scenario already has a zones directive")
            cls, allowed = entry
            zones = _construct(p, cls, allowed)
        elif verb == "background":
            if len(p.tokens) < 2 or p.tokens[1] != "cycle":
                raise p.fail(
                    p.tokens[1] if len(p.tokens) > 1 else verb,
                    "expected 'background cycle [key=value ...]'",
                )
            if background is not None:
                raise p.fail(verb, "scenario already has a background directive")
            background = _construct(
                p, BackgroundCycle, {"base": float, "amp": float, "period": float}
            )
        elif verb == "mix":
            if mix is not None:
                raise p.fail(verb, "scenario already has a mix directive")
            mix = _construct(
                p, ConnectionMix, {"churn": float, "long_lived": float}, start=1
            )
        elif verb == "chain":
            if len(p.tokens) < 2 or p.tokens[1] != "depend":
                raise p.fail(
                    p.tokens[1] if len(p.tokens) > 1 else verb,
                    "expected 'chain depend [key=value ...]'",
                )
            if chain is not None:
                raise p.fail(verb, "scenario already has a chain directive")
            chain = _construct(
                p, DependencyChain, {"gain": float, "lag": float, "stride": int}
            )
        elif verb == "dirty":
            if len(p.tokens) < 2 or p.tokens[1] != "hotset":
                raise p.fail(
                    p.tokens[1] if len(p.tokens) > 1 else verb,
                    "expected 'dirty hotset [key=value ...]'",
                )
            if hotset is not None:
                raise p.fail(verb, "scenario already has a dirty directive")
            hotset = _construct(
                p, HotSet, {"pages": int, "interval": float, "offset": int}
            )
        else:
            raise p.fail(
                verb,
                "unknown directive (known: clients, duration, tick, grid, "
                "nodes, server, load, zones, background, mix, chain, dirty)",
            )

    try:
        return ScenarioSpec(
            **fields,
            shapes=shapes,
            zones=zones if zones is not None else UniformZones(),
            background=background,
            mix=mix,
            chain=chain,
            hotset=hotset,
        )
    except ValueError as exc:
        raise ScenarioParseError(path, 0, "<spec>", str(exc)) from None


def _construct(p: _LineParser, cls, allowed: dict, start: int = 2):
    """Build a primitive from the line's options; constructor-level
    validation errors keep the path:token:reason form."""
    kwargs = p.options(allowed, start=start)
    try:
        return cls(**kwargs)
    except ValueError as exc:
        raise p.fail(" ".join(p.tokens[:start]), str(exc)) from None
