"""Reusable memory workloads for processes under migration.

The mode benches, fault tests and the scenario driver all need the same
thing: a process that keeps re-dirtying a working set while behaving
like a real application under migration — pausing while frozen,
blocking on post-copy demand fetches, stretching its tick while
auto-convergence throttles it.  This module is that loop, promoted out
of ``repro.testing`` so benches and tests stop duplicating dirtier
loops; :func:`repro.testing.start_dirtier` remains as a thin veneer.

The touch pattern itself is the pure :class:`~repro.scenarios.
primitives.HotSet` primitive, so scenario specs can carry it in the DSL
(``dirty hotset pages=40 interval=0.05``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..oskern import RpcError
from .primitives import HotSet

if TYPE_CHECKING:
    from ..des import Environment
    from ..oskern import SimProcess

__all__ = ["HotSet", "start_dirtier", "dirtier_stats"]


def dirtier_stats() -> dict:
    """A fresh live-stats dict as :func:`start_dirtier` returns it."""
    return {"ticks": 0, "faulted": 0, "errors": 0}


def start_dirtier(
    env: "Environment",
    proc: "SimProcess",
    area,
    pattern: HotSet,
) -> dict:
    """Spawn a write-hot workload on ``proc``: every ``pattern.interval``
    seconds, write ``pattern.pages`` pages of ``area`` (from
    ``pattern.offset``) through the fault-aware
    :meth:`~repro.oskern.task.SimProcess.touch_range` path.

    Unlike a bare ``write_range`` loop this behaves like a real
    application under migration: it pauses while frozen, blocks on
    demand fetches after a post-copy thaw, and slows down while
    auto-convergence throttles the process (the tick interval stretches
    by the inverse of the CPU share).  Returns a live stats dict with
    ``ticks`` (completed write bursts), ``faulted`` (bursts that hit at
    least one non-resident page) and ``errors`` (aborted post-copy
    fetches, which also stop the workload).
    """
    stats = dirtier_stats()

    def loop():
        while True:
            yield env.timeout(pattern.interval / max(proc.cpu_throttle, 1e-6))
            had_absent = proc.address_space.has_absent
            try:
                yield from proc.touch_range(area, pattern.pages, pattern.offset)
            except RpcError:
                stats["errors"] += 1
                return
            stats["ticks"] += 1
            if had_absent:
                stats["faulted"] += 1

    env.process(loop(), name=f"dirtier-{proc.pid}")
    return stats
