"""The :class:`ScenarioDriver`: brings a :class:`~repro.scenarios.
primitives.ScenarioSpec` to life against a cluster.

The driver is the workload twin of the fault plane's
:class:`~repro.faults.injector.FaultInjector`: a spec is inert data, the
driver turns it into scheduled client joins/leaves/movement/load against
``dve.space`` zone servers through the DES.  Once per ``spec.tick`` it

1. evaluates the offered population N(t) from the spec's load shapes,
2. evaluates the per-zone popularity weights w(z, t) (plus dependency-
   chain propagation from the lagged weights),
3. allocates the population over zones with deterministic
   largest-remainder rounding,
4. draws connection churn (joins/leaves beyond the population delta)
   from its *one* seeded RNG stream, and
5. pushes the per-zone populations into the zone servers
   (:meth:`~repro.dve.zoneserver.ZoneServer.set_population`), counting a
   zone as *achieved* only while its server's node is reachable — under
   an injected node fault the offered/achieved gap is the outage the
   SLO rules see.

Everything the driver does emits ``scenario.*`` trace events and — when
metrics are enabled — ``scenario.*`` counters/gauges; per-tick series
(offered, achieved, per-zone client counts) land in a
:class:`~repro.des.SeriesBundle` the ``repro-dash`` scenario panel
renders.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..des import SeriesBundle
from .primitives import FlashCrowd, ScenarioSpec
from .workload import start_dirtier

if TYPE_CHECKING:
    from ..cluster import Cluster
    from ..dve.space import ZoneGrid
    from ..dve.zoneserver import ZoneServer

__all__ = ["ScenarioDriver", "series_prefix"]


def series_prefix(campaign: str = "") -> str:
    """Series-name prefix for scenario telemetry: ``scenario.`` or
    ``scenario.<campaign>.`` — the shape ``repro-dash --campaign``
    filters on."""
    return f"scenario.{campaign}." if campaign else "scenario."


class ScenarioDriver:
    """Drives one scenario against ``zone_servers`` (aligned with
    ``grid.zones``) on ``cluster``.

    All randomness — churn draws today, anything a future primitive
    needs — comes from the single ``rng`` stream, which defaults to the
    cluster's seeded ``"scenario"`` stream: one master seed replays the
    same joins, leaves and populations byte for byte (the same contract
    :class:`~repro.dve.client.ClientPopulation` honours for the
    Figure-5 movement model).
    """

    def __init__(
        self,
        cluster: "Cluster",
        grid: "ZoneGrid",
        zone_servers: list["ZoneServer"],
        spec: ScenarioSpec,
        *,
        rng: Optional[np.random.Generator] = None,
        campaign: str = "",
    ) -> None:
        if len(zone_servers) != len(grid.zones):
            raise ValueError(
                f"need one zone server per zone: {len(zone_servers)} servers "
                f"for {len(grid.zones)} zones"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.grid = grid
        self.zone_servers = zone_servers
        self.spec = spec
        self.campaign = campaign
        self.rng = rng if rng is not None else cluster.rng.stream("scenario")
        #: Per-tick telemetry for the dash scenario panel.
        self.series = SeriesBundle()
        #: Live accounting (client-seconds for the totals).
        self.ticks = 0
        self.joins_total = 0
        self.leaves_total = 0
        self.offered_client_s = 0.0
        self.achieved_client_s = 0.0
        self.last_offered = 0
        self.last_achieved = 0
        self.dirtier_stats: list[dict] = []
        #: Unmanaged background processes, one per node (spec.background).
        self._bg_procs: list = []
        self._last_counts = np.zeros(len(grid.zones), dtype=int)
        #: (time, weights) history for dependency-chain lag lookup.
        self._weight_history: deque = deque()
        self._flash_open: set[int] = set()
        self._started = False
        self._t_start = 0.0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "ScenarioDriver":
        """Spawn the driver loop (and the spec's hot-set dirtiers).
        Call once; the loop runs for ``spec.duration`` seconds."""
        if self._started:
            raise RuntimeError("scenario driver already started")
        self._started = True
        self._t_start = self.env.now
        spec = self.spec

        if spec.hotset is not None:
            for zs in self.zone_servers:
                self.dirtier_stats.append(
                    start_dirtier(self.env, zs.proc, zs.state_area, spec.hotset)
                )

        if spec.background is not None:
            for i, node in enumerate(self.cluster.nodes[: spec.nodes]):
                proc = node.kernel.spawn_process(f"background-{node.name}")
                proc.address_space.mmap(4, tag="background")
                node.kernel.cpu.set_demand(
                    proc, spec.background.demand(i, spec.nodes, 0.0)
                )
                self._bg_procs.append((i, node, proc))

        metrics = self.env.metrics
        if metrics is not None:
            metrics.gauge("scenario.offered", fn=lambda: float(self.last_offered))
            metrics.gauge("scenario.achieved", fn=lambda: float(self.last_achieved))
            metrics.gauge(
                "scenario.achieved_ratio", fn=lambda: self.achieved_ratio()
            )

        tr = self.env.tracer
        if tr.enabled:
            tr.event(
                "scenario.start",
                campaign=self.campaign or None,
                clients=spec.clients,
                duration=spec.duration,
                zones=spec.n_zones,
                nodes=spec.nodes,
                spec=spec.describe(),
            )
        self.env.process(self._loop(), name="scenario-driver")
        return self

    # -- accounting -------------------------------------------------------------
    def achieved_ratio(self) -> float:
        """Served fraction of offered client-seconds so far (1.0 before
        the first tick)."""
        if self.offered_client_s <= 0:
            return 1.0
        return self.achieved_client_s / self.offered_client_s

    def counters(self) -> dict[str, float]:
        """Flat ``scenario.*`` values for SLO evaluation / BENCH docs."""
        return {
            "scenario.ticks_total": float(self.ticks),
            "scenario.joins_total": float(self.joins_total),
            "scenario.leaves_total": float(self.leaves_total),
            "scenario.offered_client_s": self.offered_client_s,
            "scenario.achieved_client_s": self.achieved_client_s,
            "scenario.achieved_ratio": self.achieved_ratio(),
        }

    # -- the tick ---------------------------------------------------------------
    def _zone_reachable(self, zs: "ZoneServer") -> bool:
        """Clients can reach the zone only while its node's interfaces
        are administratively up (node crash/stall faults take them
        down)."""
        node = zs.current_node()
        ifaces = [i for i in (node.public_iface, node.local_iface) if i is not None]
        return all(i.up for i in ifaces)

    def _weights_at(self, t: float) -> np.ndarray:
        spec = self.spec
        weights = spec.zones.weights(spec.n_zones, t)
        if spec.chain is not None:
            lagged = None
            cutoff = t - spec.chain.lag
            for ht, hw in self._weight_history:
                if ht <= cutoff:
                    lagged = hw
                else:
                    break
            weights = spec.chain.apply(weights, lagged)
        self._weight_history.append((t, weights))
        while len(self._weight_history) > 2 and (
            self._weight_history[1][0]
            <= t - (spec.chain.lag if spec.chain else 0.0)
        ):
            self._weight_history.popleft()
        return weights

    def _allocate(self, offered: int, weights: np.ndarray, t: float) -> np.ndarray:
        """Split ``offered`` clients over zones: targeted flash extras
        first, the remainder by weights with largest-remainder rounding
        (ties broken by zone id — fully deterministic)."""
        counts = np.zeros(self.spec.n_zones, dtype=int)
        remaining = offered
        for shape in self.spec.shapes:
            if isinstance(shape, FlashCrowd) and 0 <= shape.zone < len(counts):
                extra = min(remaining, int(round(self.spec.clients * shape.excess(t))))
                counts[shape.zone] += extra
                remaining -= extra
        if remaining > 0:
            exact = weights * remaining
            base = np.floor(exact).astype(int)
            short = remaining - int(base.sum())
            if short > 0:
                frac = exact - base
                # argsort is stable, so equal fractions favour lower ids.
                for z in np.argsort(-frac, kind="stable")[:short]:
                    base[z] += 1
            counts += base
        return counts

    def _loop(self):
        spec = self.spec
        t_end = self._t_start + spec.duration
        while self.env.now < t_end:
            yield self.env.timeout(spec.tick)
            t = self.env.now - self._t_start
            offered = spec.offered(t)
            counts = self._allocate(offered, self._weights_at(t), t)
            self._apply_tick(t, offered, counts)
        tr = self.env.tracer
        if tr.enabled:
            tr.event(
                "scenario.end",
                campaign=self.campaign or None,
                ticks=self.ticks,
                offered_client_s=round(self.offered_client_s, 6),
                achieved_client_s=round(self.achieved_client_s, 6),
                joins=self.joins_total,
                leaves=self.leaves_total,
            )

    def _apply_tick(self, t: float, offered: int, counts: np.ndarray) -> None:
        spec = self.spec
        tr = self.env.tracer

        if spec.background is not None:
            for i, node, proc in self._bg_procs:
                node.kernel.cpu.set_demand(
                    proc, spec.background.demand(i, spec.nodes, t)
                )

        # Joins/leaves: the net population delta plus drawn churn.
        delta = int(counts.sum()) - int(self._last_counts.sum())
        joins = max(delta, 0)
        leaves = max(-delta, 0)
        if spec.mix is not None:
            expected = spec.mix.expected_churn(float(counts.sum())) * spec.tick
            churn = int(self.rng.poisson(expected)) if expected > 0 else 0
            joins += churn
            leaves += churn
        self.joins_total += joins
        self.leaves_total += leaves

        achieved = 0
        prefix = series_prefix(self.campaign)
        for zs, n in zip(self.zone_servers, counts):
            n = int(n)
            zs.set_population(n)
            if self._zone_reachable(zs):
                achieved += n
            self.series.record(
                f"{prefix}zone.{zs.zone.zone_id}.clients", t, float(n)
            )
        self._last_counts = counts

        self.ticks += 1
        self.last_offered = offered
        self.last_achieved = achieved
        self.offered_client_s += offered * spec.tick
        self.achieved_client_s += achieved * spec.tick
        self.series.record(f"{prefix}offered", t, float(offered))
        self.series.record(f"{prefix}achieved", t, float(achieved))

        metrics = self.env.metrics
        if metrics is not None:
            metrics.counter("scenario.ticks_total").inc()
            if joins:
                metrics.counter("scenario.joins_total").inc(joins)
            if leaves:
                metrics.counter("scenario.leaves_total").inc(leaves)

        if tr.enabled:
            for i, shape in enumerate(spec.shapes):
                if isinstance(shape, FlashCrowd):
                    if shape.excess(t) > 0 and i not in self._flash_open:
                        self._flash_open.add(i)
                        tr.event(
                            "scenario.flash",
                            campaign=self.campaign or None,
                            at=shape.at,
                            peak=shape.peak,
                            zone=shape.zone if shape.zone >= 0 else None,
                        )
            tr.event(
                "scenario.tick",
                campaign=self.campaign or None,
                offered=offered,
                achieved=achieved,
                joins=joins,
                leaves=leaves,
            )
