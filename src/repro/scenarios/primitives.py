"""Typed workload primitives and the :class:`ScenarioSpec`.

A scenario is plain data: *how many* clients offer load, *how* the
offered population evolves over time, *where* in the zone grid it lands,
and *what* each zone-server process does with its memory while serving
it.  Primitives are pure: every one is a deterministic function of time
(and, for weight allocation, the zone index) — the only randomness in a
scenario-driven run is drawn by the :class:`~repro.scenarios.driver.
ScenarioDriver` from one named, seeded RNG stream, so a master seed
replays the same run byte for byte.

The taxonomy (see docs/scenarios.md):

====================  ====================================================
:class:`FlashCrowd`        a transient population spike (ramp/hold/decay)
:class:`DiurnalSine`       a periodic swing of the whole population
:class:`ZipfZones`         skewed zone popularity (rank-``s`` power law)
:class:`UniformZones`      every zone equally popular (the default)
:class:`RotatingHotspot`   a hotspot sweeping the zones (follow-the-sun)
:class:`CornerDrift`       population mass migrates to the grid corners
:class:`BackgroundCycle`   unmanaged per-node periodic demand (tenants)
:class:`ConnectionMix`     long-lived vs churny connection lifetimes
:class:`DependencyChain`   load on a zone bleeds into downstream zones
:class:`HotSet`            a write-hot working set on each zone server
====================  ====================================================

``FlashCrowd`` and ``DiurnalSine`` shape the *offered population* N(t);
``ZipfZones`` / ``UniformZones`` / ``RotatingHotspot`` / ``CornerDrift``
shape the per-zone *weights* w(z, t); ``DependencyChain`` post-processes the weights;
``BackgroundCycle`` puts unmanaged periodic demand on each node;
``ConnectionMix`` turns population deltas into join/leave churn; and
``HotSet`` is the memory workload each zone-server process runs (the
same primitive :func:`repro.testing.start_dirtier` is built on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "LoadShape",
    "ZoneWeights",
    "FlashCrowd",
    "DiurnalSine",
    "ZipfZones",
    "UniformZones",
    "RotatingHotspot",
    "CornerDrift",
    "BackgroundCycle",
    "ConnectionMix",
    "DependencyChain",
    "HotSet",
    "ScenarioSpec",
]


def _fmt(value) -> str:
    """DSL-stable float/int formatting (round-trips through float())."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


# -- population shapes ---------------------------------------------------------
@dataclass(frozen=True)
class LoadShape:
    """Base population-shape primitive.

    :meth:`factor` is a pure function of time returning this shape's
    multiplicative contribution to the offered population; the driver
    multiplies all shapes together:  N(t) = clients × Π factor_i(t).
    """

    #: DSL verb (second word of a ``load`` line).
    kind = "shape"

    def factor(self, t: float) -> float:
        return 1.0

    def describe(self) -> str:
        return f"load {self.kind}"


@dataclass(frozen=True)
class FlashCrowd(LoadShape):
    """A flash crowd: the population spikes by ``peak``× over a
    ramp/hold/decay envelope starting at ``at``.

    ``factor`` is 1 outside the window; inside it rises linearly to
    ``1 + peak`` over ``ramp`` seconds, holds for ``hold`` seconds, and
    decays linearly back over ``decay`` seconds.  ``zone >= 0`` aims the
    extra crowd at one zone (the whole spike lands there); ``zone=-1``
    (default) spreads it by the scenario's zone weights.
    """

    at: float = 0.0
    peak: float = 2.0
    ramp: float = 5.0
    hold: float = 10.0
    decay: float = 20.0
    zone: int = -1

    kind = "flash"

    def __post_init__(self) -> None:
        if self.peak < 0:
            raise ValueError(f"flash peak must be non-negative, got {self.peak}")
        if min(self.ramp, self.hold, self.decay) < 0:
            raise ValueError("flash ramp/hold/decay must be non-negative")

    def excess(self, t: float) -> float:
        """The spike envelope in [0, peak] (0 outside the window)."""
        dt = t - self.at
        if dt < 0:
            return 0.0
        if dt < self.ramp:
            return self.peak * (dt / self.ramp) if self.ramp else self.peak
        dt -= self.ramp
        if dt < self.hold:
            return self.peak
        dt -= self.hold
        if dt < self.decay:
            return self.peak * (1.0 - dt / self.decay)
        return 0.0

    def factor(self, t: float) -> float:
        return 1.0 + self.excess(t)

    def describe(self) -> str:
        base = (
            f"load flash at={_fmt(self.at)} peak={_fmt(self.peak)} "
            f"ramp={_fmt(self.ramp)} hold={_fmt(self.hold)} decay={_fmt(self.decay)}"
        )
        if self.zone >= 0:
            base += f" zone={self.zone}"
        return base


@dataclass(frozen=True)
class DiurnalSine(LoadShape):
    """A periodic population swing: 1 + amp·sin(2π(t/period + phase)).

    The model for diurnal player-count cycles (Baruchi et al.) scaled
    down to simulation seconds; the cycle-aware strategy's trough
    scheduling is judged against exactly this shape.
    """

    period: float = 60.0
    amp: float = 0.4
    phase: float = 0.0

    kind = "diurnal"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"diurnal period must be positive, got {self.period}")
        if not 0 <= self.amp <= 1:
            raise ValueError(f"diurnal amp must be in [0, 1], got {self.amp}")

    def factor(self, t: float) -> float:
        return 1.0 + self.amp * math.sin(2 * math.pi * (t / self.period + self.phase))

    def describe(self) -> str:
        return (
            f"load diurnal period={_fmt(self.period)} amp={_fmt(self.amp)} "
            f"phase={_fmt(self.phase)}"
        )


# -- zone popularity ------------------------------------------------------------
@dataclass(frozen=True)
class ZoneWeights:
    """Base zone-popularity primitive: pure w(zone, t) weight vectors."""

    kind = "uniform"

    def weights(self, n_zones: int, t: float) -> np.ndarray:
        """Normalised popularity weights over ``n_zones`` at time ``t``."""
        return np.full(n_zones, 1.0 / n_zones)

    def describe(self) -> str:
        return f"zones {self.kind}"


@dataclass(frozen=True)
class UniformZones(ZoneWeights):
    """Every zone equally popular (the implicit default)."""

    kind = "uniform"


@dataclass(frozen=True)
class ZipfZones(ZoneWeights):
    """Zipf-skewed zone popularity: w(rank k) ∝ 1/k^s.

    Zone rank follows zone id (zone 0 most popular) so the initial
    row-band node assignment concentrates the skew on the first nodes —
    the structural imbalance the decision plane must discover and fix.
    """

    s: float = 1.0

    kind = "zipf"

    def __post_init__(self) -> None:
        if self.s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {self.s}")

    def weights(self, n_zones: int, t: float) -> np.ndarray:
        w = 1.0 / np.arange(1, n_zones + 1, dtype=float) ** self.s
        return w / w.sum()

    def describe(self) -> str:
        return f"zones zipf s={_fmt(self.s)}"


@dataclass(frozen=True)
class RotatingHotspot(ZoneWeights):
    """A popularity wave sweeping the zones: follow-the-sun load.

    Per-zone weight is a travelling cosine,
    w(z, t) ∝ 1 + amp·cos(2π(t/period − z/n)), circling all zones once
    per ``period`` seconds (Σ cos over the ring is exactly zero, so the
    vector is normalised by construction).  Because the initial row-band
    placement gives each node contiguous zone ids, node phases come out
    staggered — every node's load is periodic with zero *cycle-mean*
    excess.  This is the workload that separates peak-chasing decision
    strategies (some node is always beyond the imbalance threshold, so
    they shed at every peak and stack the receivers forever) from
    cycle-aware ones (the deferred action re-validates against the flat
    cycle mean and is dropped).
    """

    period: float = 60.0
    amp: float = 0.5

    kind = "rotate"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"rotate period must be positive, got {self.period}")
        if not 0 <= self.amp <= 1:
            raise ValueError(f"rotate amp must be in [0, 1], got {self.amp}")

    def weights(self, n_zones: int, t: float) -> np.ndarray:
        z = np.arange(n_zones, dtype=float)
        w = 1.0 + self.amp * np.cos(2 * math.pi * (t / self.period - z / n_zones))
        return w / w.sum()

    def describe(self) -> str:
        return f"zones rotate period={_fmt(self.period)} amp={_fmt(self.amp)}"


@dataclass(frozen=True)
class CornerDrift(ZoneWeights):
    """Population mass drifts from a uniform spread into the up-left and
    down-right corner zones over ``travel`` seconds — the paper's
    Section VI-C clustering behaviour in count space.

    At t=0 the weights are uniform; by ``t >= travel`` a ``mass``
    fraction of the population has concentrated on the two corner zones
    (split evenly), the rest staying uniform.
    """

    travel: float = 300.0
    mass: float = 0.7

    kind = "corners"

    def __post_init__(self) -> None:
        if self.travel <= 0:
            raise ValueError(f"corner travel must be positive, got {self.travel}")
        if not 0 <= self.mass <= 1:
            raise ValueError(f"corner mass must be in [0, 1], got {self.mass}")

    def weights(self, n_zones: int, t: float) -> np.ndarray:
        progress = min(1.0, max(0.0, t / self.travel)) * self.mass
        w = np.full(n_zones, (1.0 - progress) / n_zones)
        w[0] += progress / 2.0
        w[n_zones - 1] += progress / 2.0
        return w

    def describe(self) -> str:
        return f"zones corners travel={_fmt(self.travel)} mass={_fmt(self.mass)}"


# -- unmanaged background load ---------------------------------------------------
@dataclass(frozen=True)
class BackgroundCycle:
    """Per-node *unmanaged* periodic CPU demand: other tenants.

    Every node runs one background process (not managed by any
    conductor, so migration cannot move it) whose demand follows
    ``base + amp·sin(2π(t/period + k/n_nodes))`` cores — node ``k``'s
    phase staggered so the cluster always has a peaking node and a
    troughing node.  After Baruchi et al.'s workload cycles: this is the
    signal the cycle-aware strategy detects and schedules around, and
    the one a pure threshold rule chases forever (the peak excess is
    periodic, not structural, but an instantaneous threshold cannot
    tell).
    """

    base: float = 0.8
    amp: float = 0.4
    period: float = 30.0

    kind = "background"

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"background base must be non-negative, got {self.base}")
        if self.amp < 0:
            raise ValueError(f"background amp must be non-negative, got {self.amp}")
        if self.period <= 0:
            raise ValueError(
                f"background period must be positive, got {self.period}"
            )

    def demand(self, node_index: int, n_nodes: int, t: float) -> float:
        """Demand (cores) on node ``node_index`` at ``t``."""
        phase = node_index / max(n_nodes, 1)
        return max(
            0.0,
            self.base + self.amp * math.sin(2 * math.pi * (t / self.period + phase)),
        )

    def describe(self) -> str:
        return (
            f"background cycle base={_fmt(self.base)} amp={_fmt(self.amp)} "
            f"period={_fmt(self.period)}"
        )


# -- connection churn ------------------------------------------------------------
@dataclass(frozen=True)
class ConnectionMix:
    """Long-lived vs churny connection mix.

    Each tick, beyond the population delta the shapes demand, a ``churn``
    fraction of the *churny* sub-population (the ``1 - long_lived``
    share) leaves and is replaced by fresh joins.  The driver draws the
    actual churn count from its seeded stream (binomial around the
    expectation) so churn is stochastic but replayable.
    """

    churn: float = 0.05
    long_lived: float = 0.7

    kind = "mix"

    def __post_init__(self) -> None:
        if not 0 <= self.churn <= 1:
            raise ValueError(f"mix churn must be in [0, 1], got {self.churn}")
        if not 0 <= self.long_lived <= 1:
            raise ValueError(
                f"mix long_lived must be in [0, 1], got {self.long_lived}"
            )

    def expected_churn(self, population: float) -> float:
        """Expected leaves (== joins) per second at ``population``."""
        return self.churn * (1.0 - self.long_lived) * population

    def describe(self) -> str:
        return f"mix churn={_fmt(self.churn)} long_lived={_fmt(self.long_lived)}"


# -- in-cluster dependencies -------------------------------------------------------
@dataclass(frozen=True)
class DependencyChain:
    """In-cluster dependency: zone z's load bleeds into zone z+stride.

    The paper's MySQL/``transd`` case generalised: serving clients in
    one zone generates downstream work (DB writes, boundary sync,
    replicated state) on another server, ``lag`` seconds later, at
    ``gain`` times the upstream weight.  Applied as a pure
    post-processing step on the zone weight vector; weights are
    re-normalised afterwards so the chain shifts load *distribution*,
    not total offered population.
    """

    gain: float = 0.3
    lag: float = 5.0
    stride: int = 1

    kind = "chain"

    def __post_init__(self) -> None:
        if self.gain < 0:
            raise ValueError(f"chain gain must be non-negative, got {self.gain}")
        if self.lag < 0:
            raise ValueError(f"chain lag must be non-negative, got {self.lag}")
        if self.stride < 1:
            raise ValueError(f"chain stride must be >= 1, got {self.stride}")

    def apply(self, weights: np.ndarray, lagged: Optional[np.ndarray]) -> np.ndarray:
        """Mix ``lagged`` upstream weights into their downstream zones.

        ``lagged`` is the weight vector from ``lag`` seconds ago (the
        driver keeps the small history); ``None`` (run start) means no
        upstream contribution yet.
        """
        if lagged is None:
            return weights
        out = weights.astype(float).copy()
        out[self.stride:] += self.gain * lagged[: len(lagged) - self.stride]
        total = out.sum()
        return out / total if total > 0 else weights

    def describe(self) -> str:
        return (
            f"chain depend gain={_fmt(self.gain)} lag={_fmt(self.lag)} "
            f"stride={self.stride}"
        )


# -- memory workload ---------------------------------------------------------------
@dataclass(frozen=True)
class HotSet:
    """A write-hot working set: every ``interval`` seconds the process
    touches ``pages`` pages of its state at ``offset``.

    This is the reusable form of the dirtier loops the mode benches and
    tests previously duplicated — :func:`repro.scenarios.workload.
    start_dirtier` turns it into a live, fault-aware DES workload, and
    :func:`repro.testing.start_dirtier` is a thin veneer over it.
    """

    pages: int = 40
    interval: float = 0.05
    offset: int = 0

    kind = "hotset"

    def __post_init__(self) -> None:
        if self.pages < 1:
            raise ValueError(f"hotset pages must be >= 1, got {self.pages}")
        if self.interval <= 0:
            raise ValueError(
                f"hotset interval must be positive, got {self.interval}"
            )
        if self.offset < 0:
            raise ValueError(f"hotset offset must be non-negative, got {self.offset}")

    def describe(self) -> str:
        base = f"dirty hotset pages={self.pages} interval={_fmt(self.interval)}"
        if self.offset:
            base += f" offset={self.offset}"
        return base


# -- the spec -------------------------------------------------------------------------
@dataclass
class ScenarioSpec:
    """Everything a scenario-driven run is made of.

    Built either directly or from the one-liner DSL
    (:func:`repro.scenarios.dsl.parse_scenario`); :meth:`describe`
    round-trips.  The spec is inert data — the
    :class:`~repro.scenarios.driver.ScenarioDriver` brings it to life
    against a cluster.
    """

    #: Base offered population (clients), before the shapes act on it.
    clients: int = 400
    #: Run length the driver sustains the workload for (seconds).
    duration: float = 120.0
    #: Driver tick: population refresh / series sampling period.
    tick: float = 1.0
    #: Zone grid (cols x rows) and node count; rows % nodes == 0.
    grid_cols: int = 4
    grid_rows: int = 4
    nodes: int = 4
    #: Zone-server calibration: CPU per client / base (fraction of a
    #: core) and state size (pages) — campaign-scale runs use far fewer
    #: clients than Figure 5, so the per-client cost scales up.
    cpu_per_client: float = 0.003
    cpu_base: float = 0.02
    pages: int = 64
    shapes: list[LoadShape] = field(default_factory=list)
    zones: ZoneWeights = field(default_factory=UniformZones)
    background: Optional[BackgroundCycle] = None
    mix: Optional[ConnectionMix] = None
    chain: Optional[DependencyChain] = None
    hotset: Optional[HotSet] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"scenario needs at least one client, got {self.clients}")
        if self.duration <= 0:
            raise ValueError(f"scenario duration must be positive, got {self.duration}")
        if self.tick <= 0:
            raise ValueError(f"scenario tick must be positive, got {self.tick}")
        if self.grid_cols < 1 or self.grid_rows < 1:
            raise ValueError("scenario grid must be non-empty")
        if self.nodes < 1:
            raise ValueError("scenario needs at least one node")
        if self.grid_rows % self.nodes != 0:
            raise ValueError(
                f"{self.grid_rows} grid rows cannot split evenly across "
                f"{self.nodes} nodes"
            )

    @property
    def n_zones(self) -> int:
        return self.grid_cols * self.grid_rows

    def offered(self, t: float) -> int:
        """Offered population at ``t``: clients × Π shape factors."""
        n = float(self.clients)
        for shape in self.shapes:
            n *= shape.factor(t)
        return max(0, int(round(n)))

    def describe(self) -> str:
        """The spec in DSL form (round-trips through ``parse_scenario``)."""
        lines = [
            f"clients {self.clients}",
            f"duration {_fmt(self.duration)}",
            f"tick {_fmt(self.tick)}",
            f"grid {self.grid_cols}x{self.grid_rows}",
            f"nodes {self.nodes}",
            (
                f"server cpu_per_client={_fmt(self.cpu_per_client)} "
                f"cpu_base={_fmt(self.cpu_base)} pages={self.pages}"
            ),
        ]
        lines.extend(shape.describe() for shape in self.shapes)
        if not isinstance(self.zones, UniformZones):
            lines.append(self.zones.describe())
        if self.background is not None:
            lines.append(self.background.describe())
        if self.mix is not None:
            lines.append(self.mix.describe())
        if self.chain is not None:
            lines.append(self.chain.describe())
        if self.hotset is not None:
            lines.append(self.hotset.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ScenarioSpec {self.clients} clients, {self.duration:g}s, "
            f"{self.grid_cols}x{self.grid_rows} zones on {self.nodes} nodes, "
            f"{len(self.shapes)} shapes>"
        )
