"""Workload scenarios: composable load primitives, a one-liner DSL, a
seeded driver, and the chaos-campaign runner.

This package is the workload twin of :mod:`repro.faults`: where a fault
plan says what *breaks* and when, a scenario spec says what the *world
does* — flash crowds, diurnal swings, Zipf zone popularity, churny vs
long-lived connection mixes, in-cluster dependency chains, write-hot
memory sets.  Primitives are pure seeded generators
(:mod:`~repro.scenarios.primitives`), the DSL round-trips through
``parse``/``describe`` (:mod:`~repro.scenarios.dsl`), the
:class:`~repro.scenarios.driver.ScenarioDriver` schedules the resulting
joins/leaves/load against ``dve`` zone servers through the DES, and
:mod:`~repro.scenarios.campaign` composes (scenario, fault plan,
strategy, SLO ruleset) quadruples into the standing regression suite
behind ``repro-campaign``.
"""

from .campaign import (
    NAMED_CAMPAIGNS,
    Campaign,
    CampaignResult,
    campaign_names,
    get_campaign,
    parse_campaign,
    run_campaign,
)
from .driver import ScenarioDriver, series_prefix
from .dsl import ScenarioParseError, parse_scenario
from .primitives import (
    BackgroundCycle,
    ConnectionMix,
    CornerDrift,
    DependencyChain,
    DiurnalSine,
    FlashCrowd,
    HotSet,
    RotatingHotspot,
    ScenarioSpec,
    UniformZones,
    ZipfZones,
)
from .workload import start_dirtier

__all__ = [
    "BackgroundCycle",
    "Campaign",
    "CampaignResult",
    "ConnectionMix",
    "CornerDrift",
    "DependencyChain",
    "DiurnalSine",
    "FlashCrowd",
    "HotSet",
    "NAMED_CAMPAIGNS",
    "RotatingHotspot",
    "ScenarioDriver",
    "ScenarioParseError",
    "ScenarioSpec",
    "UniformZones",
    "ZipfZones",
    "campaign_names",
    "get_campaign",
    "parse_campaign",
    "parse_scenario",
    "run_campaign",
    "series_prefix",
    "start_dirtier",
]
