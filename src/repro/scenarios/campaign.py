"""Chaos campaigns: seeded (scenario, fault plan, strategy, SLO ruleset)
quadruples run as one reproducible experiment.

A campaign document has four sections — the workload, what breaks, who
decides, and what must hold::

    [campaign]
    name = diurnal-cycle-aware
    strategy = cycle-aware
    strategy_params = min_cycles=2.0
    seed = 42
    degraded_above = 82

    [scenario]
    clients 400
    duration 240
    load diurnal period=60 amp=0.35

    [faults]
    t=60 crash node node3

    [slo]
    scenario.achieved_ratio >= 0.95
    campaign.migrations_failed == 0

:func:`run_campaign` builds the cluster, arms the faults, installs the
strategy, drives the scenario, and evaluates the SLO rules through
:mod:`repro.obs.slo` over the flat ``scenario.*`` / ``campaign.*``
measurements; :meth:`CampaignResult.bench_doc` wraps everything in a
versioned ``repro-bench/1`` document, so each campaign is a standing
regression gate, not a one-off demo.  A dozen named campaigns ship in
:data:`NAMED_CAMPAIGNS` (``repro-campaign list``).

Determinism: the campaign seed feeds the cluster's master
:class:`~repro.des.RngRegistry` (scenario churn, fault packet verdicts,
heartbeat jitter, strategy rngs all derive from it), so re-running any
campaign with the same seed yields byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults import FaultPlan
from ..obs.slo import SLOReport, evaluate_slos, parse_rule
from .driver import ScenarioDriver
from .dsl import ScenarioParseError, parse_scenario
from .primitives import ScenarioSpec, _fmt

__all__ = [
    "Campaign",
    "CampaignResult",
    "parse_campaign",
    "run_campaign",
    "NAMED_CAMPAIGNS",
    "campaign_names",
    "get_campaign",
]

_SECTIONS = ("campaign", "scenario", "faults", "slo")


@dataclass
class Campaign:
    """One named quadruple: scenario × fault plan × strategy × SLOs."""

    name: str
    scenario: ScenarioSpec
    faults: FaultPlan = field(default_factory=FaultPlan)
    strategy: str = "paper-threshold"
    strategy_params: dict = field(default_factory=dict)
    slos: list[str] = field(default_factory=list)
    seed: int = 42
    #: A node is degraded above this CPU load (%).
    degraded_above: float = 82.0
    #: Conductor knobs the campaign may pin.
    imbalance_threshold: float = 12.0
    check_interval: float = 1.0
    calm_down: float = 5.0
    round_timeout: float = 0.08
    mode: str = "precopy"
    compression: str = "none"
    #: Measures (degradation, spread) start after this many seconds;
    #: ``None`` means a quarter of the scenario duration.
    measure_after: Optional[float] = None
    #: Scenario duration used under ``--quick``; ``None`` keeps the full
    #: duration.
    quick_duration: Optional[float] = None

    def with_overrides(self, **overrides) -> "Campaign":
        """A copy with header fields replaced — the hook the sweep
        runner (:mod:`repro.sweep`) uses to expand one campaign into a
        parameter matrix.  Overriding ``strategy`` without also passing
        ``strategy_params`` clears the params: they belong to the
        strategy they were written for."""
        from dataclasses import replace

        if "strategy" in overrides and "strategy_params" not in overrides:
            overrides["strategy_params"] = {}
        return replace(self, **overrides)

    def effective_measure_after(self, duration: float) -> float:
        return (
            self.measure_after
            if self.measure_after is not None
            else duration / 4.0
        )

    def describe(self) -> str:
        """The campaign in file form (round-trips through
        :func:`parse_campaign`)."""
        header = [
            "[campaign]",
            f"name = {self.name}",
            f"seed = {self.seed}",
            f"strategy = {self.strategy}",
        ]
        if self.strategy_params:
            params = ",".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.strategy_params.items())
            )
            header.append(f"strategy_params = {params}")
        header.append(f"degraded_above = {_fmt(self.degraded_above)}")
        header.append(f"imbalance_threshold = {_fmt(self.imbalance_threshold)}")
        header.append(f"check_interval = {_fmt(self.check_interval)}")
        header.append(f"calm_down = {_fmt(self.calm_down)}")
        header.append(f"round_timeout = {_fmt(self.round_timeout)}")
        if self.mode != "precopy":
            header.append(f"mode = {self.mode}")
        if self.compression != "none":
            header.append(f"compression = {self.compression}")
        if self.measure_after is not None:
            header.append(f"measure_after = {_fmt(self.measure_after)}")
        if self.quick_duration is not None:
            header.append(f"quick_duration = {_fmt(self.quick_duration)}")
        parts = ["\n".join(header), "[scenario]\n" + self.scenario.describe()]
        if len(self.faults):
            parts.append("[faults]\n" + self.faults.describe())
        if self.slos:
            parts.append("[slo]\n" + "\n".join(self.slos))
        return "\n\n".join(parts) + "\n"


# -- the campaign-file parser ---------------------------------------------------
_HEADER_PARSERS = {
    "name": str,
    "seed": int,
    "strategy": str,
    "strategy_params": str,
    "degraded_above": float,
    "imbalance_threshold": float,
    "check_interval": float,
    "calm_down": float,
    "round_timeout": float,
    "mode": str,
    "compression": str,
    "measure_after": float,
    "quick_duration": float,
}


def _parse_strategy_params(value: str, path: str, lineno: int) -> dict:
    params: dict = {}
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        if not sep:
            raise ScenarioParseError(
                path, lineno, item, "strategy_params items must be key=value"
            )
        try:
            params[key.strip()] = float(raw)
        except ValueError:
            params[key.strip()] = raw.strip()
    return params


def parse_campaign(text: str, path: str = "<campaign>") -> Campaign:
    """Parse a sectioned campaign document.

    Raises :class:`~repro.scenarios.dsl.ScenarioParseError` (message
    ``path:lineno:token: reason``) on any malformed content — including
    malformed lines inside the ``[scenario]``, ``[faults]`` and
    ``[slo]`` sections, whose line numbers stay relative to the whole
    document.
    """
    sections: dict[str, list[tuple[int, str]]] = {name: [] for name in _SECTIONS}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ScenarioParseError(path, lineno, line, "unterminated section header")
            name = line[1:-1].strip()
            if name not in _SECTIONS:
                raise ScenarioParseError(
                    path,
                    lineno,
                    name,
                    f"unknown section (known: {', '.join(_SECTIONS)})",
                )
            current = name
            continue
        if current is None:
            raise ScenarioParseError(
                path, lineno, line.split()[0], "content before any [section] header"
            )
        sections[current].append((lineno, line))

    header: dict = {}
    for lineno, line in sections["campaign"]:
        key, sep, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ScenarioParseError(
                path, lineno, line, "campaign entries must be 'key = value'"
            )
        parser = _HEADER_PARSERS.get(key)
        if parser is None:
            raise ScenarioParseError(
                path,
                lineno,
                key,
                f"unknown campaign key (known: {', '.join(sorted(_HEADER_PARSERS))})",
            )
        try:
            header[key] = parser(value)
        except ValueError:
            raise ScenarioParseError(
                path, lineno, value, f"bad value for campaign key {key!r}"
            ) from None
    if "name" not in header:
        raise ScenarioParseError(path, 0, "name", "campaign needs a 'name = ...' entry")
    if "strategy_params" in header:
        src_lineno = next(
            (ln for ln, line in sections["campaign"] if line.startswith("strategy_params")),
            0,
        )
        header["strategy_params"] = _parse_strategy_params(
            header["strategy_params"], path, src_lineno
        )

    if not sections["scenario"]:
        raise ScenarioParseError(path, 0, "scenario", "campaign needs a [scenario] section")
    # Reconstruct the section with original line numbers so scenario
    # parse errors point at the right line of the campaign file.
    max_line = max(ln for ln, _ in sections["scenario"])
    scenario_lines = [""] * max_line
    for ln, line in sections["scenario"]:
        scenario_lines[ln - 1] = line
    spec = parse_scenario("\n".join(scenario_lines), path=path)

    plan = FaultPlan()
    for lineno, line in sections["faults"]:
        from ..faults.dsl import parse_fault

        try:
            plan.add(parse_fault(line))
        except ValueError as exc:
            raise ScenarioParseError(path, lineno, line, str(exc)) from None

    slos: list[str] = []
    for lineno, line in sections["slo"]:
        try:
            parse_rule(line)
        except ValueError as exc:
            raise ScenarioParseError(path, lineno, line, str(exc)) from None
        slos.append(line)

    return Campaign(scenario=spec, faults=plan, slos=slos, **header)


# -- execution --------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: Campaign
    seed: int
    quick: bool
    duration: float
    #: Flat measurement values (``scenario.*`` and ``campaign.*``).
    values: dict[str, float]
    slo_report: SLOReport
    driver: ScenarioDriver
    migrations: list

    @property
    def passed(self) -> bool:
        return self.slo_report.passed

    #: Which way each campaign measure is *better*, for BENCH documents.
    _DIRECTIONS = {
        "scenario.achieved_ratio": ("ratio", "higher"),
        "scenario.offered_client_s": ("client-s", "none"),
        "scenario.achieved_client_s": ("client-s", "higher"),
        "scenario.joins_total": ("count", "none"),
        "scenario.leaves_total": ("count", "none"),
        "scenario.ticks_total": ("count", "none"),
        "campaign.degradation_node_s": ("s", "lower"),
        "campaign.spread_pct": ("%", "lower"),
        "campaign.migrations": ("count", "lower"),
        "campaign.migrations_failed": ("count", "lower"),
        "campaign.freeze_total_ms": ("ms", "lower"),
        "campaign.planner_deferred": ("count", "none"),
        "campaign.planner_dropped": ("count", "none"),
    }

    def bench_doc(self) -> dict:
        """The run as a validated ``repro-bench/1`` document
        (``BENCH_campaign_<name>.json``)."""
        from ..obs.bench import make_bench

        metrics = {}
        for name, value in sorted(self.values.items()):
            unit, direction = self._DIRECTIONS.get(name, ("value", "none"))
            metrics[name] = {"value": float(value), "unit": unit, "direction": direction}
        return make_bench(
            f"campaign_{self.campaign.name}",
            quick=self.quick,
            params={
                "campaign": self.campaign.name,
                "seed": self.seed,
                "strategy": self.campaign.strategy,
                "duration_s": self.duration,
                "degraded_above_pct": self.campaign.degraded_above,
                "faults": self.campaign.faults.describe(),
                "scenario": self.campaign.scenario.describe(),
            },
            metrics=metrics,
            slos=self.slo_report.to_dict(),
        )

    def render(self) -> str:
        from ..analysis.report import render_kv

        body = render_kv(
            {k: round(v, 6) for k, v in sorted(self.values.items())},
            title=f"campaign {self.campaign.name} (seed {self.seed})",
        )
        return body + "\n\n" + self.slo_report.render()


def run_campaign(
    campaign: Campaign,
    *,
    quick: bool = False,
    seed: Optional[int] = None,
    trace_path=None,
    series_path=None,
) -> CampaignResult:
    """Execute one campaign end to end.

    ``seed`` overrides the campaign's seed; ``trace_path`` enables
    tracing and writes the JSONL trace there; ``series_path`` writes the
    driver's per-tick ``scenario.*`` series as CSV (the ``repro-dash``
    scenario-panel input).  Returns the :class:`CampaignResult` with the
    SLO verdict evaluated — the caller decides whether a failed verdict
    is fatal (CI makes it blocking).
    """
    from ..cluster import Cluster, ClusterConfig
    from ..core import LiveMigrationConfig
    from ..dve.space import ZoneGrid
    from ..dve.zoneserver import ZoneServer, ZoneServerConfig
    from ..faults import install_faults
    from ..middleware import ConductorConfig, PolicyConfig

    spec = campaign.scenario
    effective_seed = campaign.seed if seed is None else seed
    duration = spec.duration
    if quick and campaign.quick_duration is not None:
        duration = campaign.quick_duration

    cluster = Cluster(
        ClusterConfig(n_nodes=spec.nodes, with_db=False, master_seed=effective_seed)
    )
    tracer = None
    if trace_path is not None:
        tracer = cluster.env.enable_tracing()

    grid = ZoneGrid(spec.grid_cols, spec.grid_rows, spec.nodes)
    zs_config = ZoneServerConfig(
        memory_pages=spec.pages,
        cpu_per_client=spec.cpu_per_client,
        cpu_base=spec.cpu_base,
    )
    zone_servers = []
    for zone in grid.zones:
        node = cluster.nodes[grid.initial_node_of(zone)]
        zs = ZoneServer(cluster, node, zone, db=None, config=zs_config)
        zs.start()
        zone_servers.append(zs)

    conductor_config = ConductorConfig(
        policies=PolicyConfig(imbalance_threshold=campaign.imbalance_threshold),
        check_interval=campaign.check_interval,
        calm_down=campaign.calm_down,
        migration=LiveMigrationConfig(
            initial_round_timeout=campaign.round_timeout,
            mode=campaign.mode,
            compression=campaign.compression,
        ),
        strategy=campaign.strategy,
        strategy_params=dict(campaign.strategy_params),
        seed=effective_seed,
    )
    conductors = cluster.install_balancers(conductor_config)
    for zs in zone_servers:
        zs.current_node().daemons["conductor"].manage(zs.proc)

    if len(campaign.faults):
        install_faults(cluster, campaign.faults)

    driver = ScenarioDriver(
        cluster, grid, zone_servers, spec, campaign=campaign.name
    ).start()

    measure_after = campaign.effective_measure_after(duration)
    samples: list[list[float]] = []

    def sampler():
        while True:
            yield cluster.env.timeout(spec.tick)
            if cluster.env.now >= measure_after:
                samples.append([c.monitor.current_load() for c in conductors])

    cluster.env.process(sampler(), name="campaign-sampler")
    cluster.env.run(until=duration)

    degradation = sum(
        spec.tick
        for loads in samples
        for load in loads
        if load > campaign.degraded_above
    )
    spread = (
        sum(max(loads) - min(loads) for loads in samples) / len(samples)
        if samples
        else 0.0
    )
    events = [ev for c in conductors for ev in c.events]
    succeeded = [ev for ev in events if ev.success]
    failed = [ev for ev in events if not ev.success]

    values = dict(driver.counters())
    values.update(
        {
            "campaign.degradation_node_s": degradation,
            "campaign.spread_pct": spread,
            "campaign.migrations": float(len(succeeded)),
            "campaign.migrations_failed": float(len(failed)),
            "campaign.freeze_total_ms": sum(
                ev.freeze_time for ev in succeeded if ev.freeze_time is not None
            )
            * 1e3,
            "campaign.planner_deferred": float(
                sum(c.planner.deferred_total for c in conductors)
            ),
            "campaign.planner_dropped": float(
                sum(c.planner.dropped_total for c in conductors)
            ),
        }
    )
    report = evaluate_slos(campaign.slos, values)

    if trace_path is not None and tracer is not None:
        from ..obs.export import write_jsonl

        write_jsonl(trace_path, tracer)
    if series_path is not None:
        from pathlib import Path

        from ..analysis.export import series_to_csv

        Path(series_path).write_text(series_to_csv(driver.series))

    return CampaignResult(
        campaign=campaign,
        seed=effective_seed,
        quick=quick,
        duration=duration,
        values=values,
        slo_report=report,
        driver=driver,
        migrations=succeeded,
    )


# -- the standing suite -------------------------------------------------------------
#: The common campaign scale: 4 nodes × a 4x4 grid (4 zone servers per
#: node), 400 offered clients at 0.6% of a core each — a uniformly
#: spread population parks every node near 34% CPU, leaving headroom
#: for the skews and spikes below to push hot nodes past the
#: degradation threshold.
_BASE_SCENARIO = """\
clients 400
duration 240
tick 1
grid 4x4
nodes 4
server cpu_per_client=0.006 cpu_base=0.02 pages=48
"""

#: The decision-strategy head-to-head scale: eight fat zones (two per
#: node, ~8% of a node each) under a staggered periodic background.
#: Balanced, a node's background peak tops out just *below* the 82%
#: degradation threshold; one extra zone stacked on it peaks just
#: *above* — the margin that separates peak-chasing from cycle-aware
#: decisions.
_DIURNAL_SCENARIO = """\
clients 400
duration 420
tick 1
grid 2x4
nodes 4
server cpu_per_client=0.0032 cpu_base=0.02 pages=48
background cycle base=0.8 amp=0.4 period=30
"""

NAMED_CAMPAIGNS: dict[str, str] = {
    # Nothing happens, and that is the assertion: a uniform population
    # must not trigger migrations, and every offered client is served.
    "quiet-baseline": f"""\
[campaign]
name = quiet-baseline
quick_duration = 90

[scenario]
{_BASE_SCENARIO}
[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations == 0
campaign.migrations_failed == 0
""",
    # Zipf zone popularity: the first row band carries ~65% of the
    # population, so node1 starts structurally overloaded.  The decision
    # plane must discover and fix it, then stay quiet.
    "zipf-zones-paper": f"""\
[campaign]
name = zipf-zones-paper
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
zones zipf s=1.1

[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations >= 1
campaign.migrations_failed == 0
campaign.spread_pct <= 45
""",
    # The fig5 corner-drift clustering in count space: load slowly
    # concentrates on the first and last nodes.
    "corner-drift-paper": f"""\
[campaign]
name = corner-drift-paper
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
zones corners travel=180 mass=0.7

[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations >= 1
campaign.migrations_failed == 0
""",
    # A flash crowd aimed at zone 0 while node3 crashes outright: the
    # cluster must keep serving everything not on the dead node.
    "flash-crowd-node-crash": f"""\
[campaign]
name = flash-crowd-node-crash
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
load flash at=40 peak=1.5 ramp=10 hold=30 decay=20 zone=0

[faults]
t=60 crash node node3

[slo]
scenario.achieved_ratio >= 0.6
campaign.migrations >= 1
""",
    # The same flash crowd with a lossy link under the hot node instead
    # of a crash: recovery is retransmission, not rerouting, so service
    # must stay near-perfect.
    "flash-crowd-link-loss": f"""\
[campaign]
name = flash-crowd-link-loss
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
load flash at=40 peak=1.5 ramp=10 hold=30 decay=20 zone=0

[faults]
t=45 loss link node1 rate=0.05 duration=40

[slo]
scenario.achieved_ratio >= 0.95
campaign.migrations >= 1
""",
    # Staggered diurnal background (other tenants) on a balanced layout
    # of eight fat zones, decided by the paper's threshold rule: it
    # cannot tell a cyclic peak from structural excess, so it sheds at
    # every peak and the stacked receivers — held by the post-migration
    # calm-down — ride their next peak above the degradation threshold.
    # The head-to-head twin of diurnal-cycle-aware below:
    # bench_ext_scenarios gates cycle-aware beating this on
    # degradation-seconds.
    "diurnal-paper": f"""\
[campaign]
name = diurnal-paper
calm_down = 10
measure_after = 120
quick_duration = 240

[scenario]
{_DIURNAL_SCENARIO}
[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations >= 10
""",
    # Same workload, cycle-aware decisions: the peak-driven triggers get
    # deferred into the forecast trough and dropped at cycle-mean
    # re-validation, so the layout stays put and no node ever crosses
    # the degradation threshold.
    "diurnal-cycle-aware": f"""\
[campaign]
name = diurnal-cycle-aware
strategy = cycle-aware
strategy_params = min_cycles=2.0
calm_down = 10
measure_after = 120
quick_duration = 240

[scenario]
{_DIURNAL_SCENARIO}
[slo]
scenario.achieved_ratio >= 0.999
campaign.degradation_node_s <= 5
campaign.planner_deferred >= 1
""",
    # Same workload again, band-based balancing: the band is wider than
    # the periodic swing, so it only ever fixes structure — of which
    # this layout has none — and stays almost completely quiet.
    "diurnal-workload-balance": f"""\
[campaign]
name = diurnal-workload-balance
strategy = workload-balance-to-average
strategy_params = band=22
calm_down = 10
measure_after = 120
quick_duration = 240

[scenario]
{_DIURNAL_SCENARIO}
[slo]
scenario.achieved_ratio >= 0.999
campaign.degradation_node_s <= 5
campaign.migrations <= 10
""",
    # Churny connection mix through a 3-second full partition of the
    # hot node's link: joins/leaves keep flowing, the partition heals,
    # nothing may stay broken.
    "churny-mix-partition": f"""\
[campaign]
name = churny-mix-partition
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
zones zipf s=1.1
mix churn=0.1 long_lived=0.5

[faults]
t=50 partition link node1 duration=3

[slo]
scenario.achieved_ratio >= 0.99
scenario.joins_total >= 100
scenario.leaves_total >= 100
""",
    # The paper's in-cluster dependency case: zone load bleeds into the
    # next zone's server with a lag, while the downstream node stalls
    # for two seconds mid-run.
    "dependency-chain-stall": f"""\
[campaign]
name = dependency-chain-stall
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
zones zipf s=1.1
chain depend gain=0.4 lag=5 stride=4

[faults]
t=50 stall node node2 duration=2

[slo]
scenario.achieved_ratio >= 0.97
campaign.migrations_failed <= 2
""",
    # Post-copy under a write-hot working set: migrations must land
    # (demand-fetch keeps downtime flat) even though precopy would
    # never converge on this dirty rate.
    "hotset-postcopy": f"""\
[campaign]
name = hotset-postcopy
mode = postcopy
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
zones zipf s=1.1
dirty hotset pages=24 interval=0.1

[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations >= 1
campaign.migrations_failed == 0
""",
    # Follow-the-sun: a popularity wave circles the zones.  Unlike the
    # background cycle this load *is* migratable, and the threshold
    # strategy genuinely solves it: a handful of moves interleave zone
    # phases on every node until the wave cancels out, then it goes
    # quiet.  The standing assertion that chasing is sometimes right.
    "follow-the-sun": f"""\
[campaign]
name = follow-the-sun
measure_after = 120
quick_duration = 180

[scenario]
clients 400
duration 300
tick 1
grid 4x4
nodes 4
server cpu_per_client=0.011 cpu_base=0.01 pages=48
zones rotate period=40 amp=0.45

[slo]
scenario.achieved_ratio >= 0.999
campaign.migrations_failed == 0
campaign.spread_pct <= 25
""",
    # Correlated failures: two node crashes ten seconds apart — half
    # the cluster gone.  The survivors must absorb what they can and
    # the balance plane must not wedge.
    "correlated-crashes": f"""\
[campaign]
name = correlated-crashes
quick_duration = 120

[scenario]
{_BASE_SCENARIO}
[faults]
t=50 crash node node3
t=60 crash node node4

[slo]
scenario.achieved_ratio >= 0.45
scenario.ticks_total >= 100
""",
}


def campaign_names() -> list[str]:
    return sorted(NAMED_CAMPAIGNS)


def get_campaign(name: str) -> Campaign:
    """Parse one named campaign.  Raises :class:`KeyError` with the
    known names for typos."""
    text = NAMED_CAMPAIGNS.get(name)
    if text is None:
        raise KeyError(
            f"unknown campaign {name!r} (known: {', '.join(campaign_names())})"
        )
    return parse_campaign(text, path=f"<campaign:{name}>")
