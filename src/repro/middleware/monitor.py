"""atop-like load monitoring (Section IV).

The conductor retrieves load information via the *atop* utility in the
paper; here a :class:`LoadMonitor` samples the kernel's CPU accounting
on a fixed interval, keeps a short smoothing window (utilisation
indicators need a calm-down period to stabilise after migrations), and
reports per-process CPU shares for the selection policy.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..des import TimeSeries
from ..oskern import SimProcess
from ..oskern.node import Host

__all__ = ["LoadMonitor"]


class LoadMonitor:
    """Periodic sampler of node CPU utilisation."""

    def __init__(
        self,
        host: Host,
        interval: float = 1.0,
        window: int = 3,
        record_history: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.host = host
        self.env = host.env
        self.interval = interval
        self._window: deque[float] = deque(maxlen=window)
        self.history: Optional[TimeSeries] = (
            TimeSeries(f"{host.name}-cpu") if record_history else None
        )
        self._proc = self.env.process(self._sample_loop(), name=f"monitor-{host.name}")
        metrics = self.env.metrics
        if metrics is not None:
            metrics.gauge(f"cpu.{host.name}", fn=self.instantaneous_load)

    def _sample_loop(self):
        while True:
            load = self.host.kernel.cpu.utilization()
            self._window.append(load)
            if self.history is not None:
                self.history.record(self.env.now, load)
            yield self.env.timeout(self.interval)

    # -- queries ---------------------------------------------------------------
    def current_load(self) -> float:
        """Smoothed CPU utilisation in percent (mean of the window)."""
        if not self._window:
            return self.host.kernel.cpu.utilization()
        return sum(self._window) / len(self._window)

    def instantaneous_load(self) -> float:
        return self.host.kernel.cpu.utilization()

    def process_shares(self, procs: list[SimProcess]) -> list[tuple[SimProcess, float]]:
        """Per-process granted CPU shares (% of node capacity)."""
        cpu = self.host.kernel.cpu
        return [(p, cpu.cpu_share_of(p)) for p in procs]
