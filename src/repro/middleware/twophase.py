"""Receiver-side migration admission: two-phase commit + calm-down.

The receiver enters the migrating state through a two-phase commit with
the sender and accepts only one migration at a time (Section IV-A).
After a migration both ends enter a *calm-down* period so their resource
indicators can stabilise before further decisions.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment

__all__ = ["MigrationSlot"]


class MigrationSlot:
    """One node's single inbound/outbound migration slot + calm-down."""

    def __init__(self, env: Environment, calm_down: float = 10.0) -> None:
        if calm_down < 0:
            raise ValueError("calm-down must be non-negative")
        self.env = env
        self.calm_down = calm_down
        self._reserved_by: Optional[str] = None
        self._calm_until = 0.0

    # -- state ------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._reserved_by is not None

    @property
    def calming(self) -> bool:
        return self.env.now < self._calm_until

    @property
    def reserved_by(self) -> Optional[str]:
        return self._reserved_by

    # -- 2PC verbs -----------------------------------------------------------
    def try_reserve(self, who: str) -> bool:
        """Phase 1: reserve the slot.  Fails when busy or calming."""
        if self.busy or self.calming:
            return False
        self._reserved_by = who
        tr = self.env.tracer
        if tr.enabled:
            tr.event("cond.slot.reserve", who=who)
        return True

    def release(self, who: str, start_calm_down: bool = True) -> None:
        """Phase 2 (commit or abort): free the slot.

        ``start_calm_down`` is set on successful migrations so the load
        indicators can settle; aborts release immediately.
        """
        if self._reserved_by != who:
            raise RuntimeError(
                f"slot reserved by {self._reserved_by!r}, released by {who!r}"
            )
        self._reserved_by = None
        tr = self.env.tracer
        if tr.enabled:
            tr.event("cond.slot.release", who=who, calm_down=start_calm_down)
        if start_calm_down:
            self._calm_until = self.env.now + self.calm_down

    def start_calm_down(self) -> None:
        """Enter calm-down without holding the slot (sender side)."""
        self._calm_until = self.env.now + self.calm_down
