"""Receiver-side migration admission: two-phase commit + calm-down.

The receiver enters the migrating state through a two-phase commit with
the sender (Section IV-A).  The paper admits only one migration at a
time; :class:`MigrationAdmission` generalizes that to a capacity-N
admission — up to N concurrent migration sessions, each followed by its
own *calm-down* period so resource indicators can stabilise before the
capacity is handed out again.  :class:`MigrationSlot` is the capacity-1
special case and preserves the paper's semantics exactly.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment

__all__ = ["MigrationAdmission", "MigrationSlot"]


class MigrationAdmission:
    """Capacity-N admission of concurrent migration sessions.

    Each reservation occupies one unit of capacity while the session
    runs; a committed release converts the unit into a calm-down that
    keeps occupying it until the cool-off expires.  With ``capacity=1``
    this degenerates to the paper's single busy-or-calming slot.
    """

    def __init__(
        self, env: Environment, capacity: int = 1, calm_down: float = 10.0
    ) -> None:
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if calm_down < 0:
            raise ValueError("calm-down must be non-negative")
        self.env = env
        self.capacity = capacity
        self.calm_down = calm_down
        #: One entry per reservation held (a sender may hold several).
        self._holders: list[str] = []
        #: Expiry times of per-session calm-downs still occupying capacity.
        self._cooldowns: list[float] = []

    def _prune(self) -> None:
        now = self.env.now
        self._cooldowns = [t for t in self._cooldowns if t > now]

    # -- state ------------------------------------------------------------
    @property
    def holders(self) -> list[str]:
        return list(self._holders)

    @property
    def in_flight(self) -> int:
        return len(self._holders)

    @property
    def available(self) -> int:
        """Capacity units not held by a session or cooling down."""
        self._prune()
        return max(0, self.capacity - len(self._holders) - len(self._cooldowns))

    @property
    def busy(self) -> bool:
        return len(self._holders) >= self.capacity

    @property
    def calming(self) -> bool:
        self._prune()
        return bool(self._cooldowns)

    @property
    def reserved_by(self) -> Optional[str]:
        return self._holders[0] if self._holders else None

    # -- 2PC verbs -----------------------------------------------------------
    def try_reserve(self, who: str) -> bool:
        """Phase 1: reserve one capacity unit.  Fails when every unit is
        held or cooling down."""
        if self.available <= 0:
            return False
        self._holders.append(who)
        tr = self.env.tracer
        if tr.enabled:
            tr.event(
                "cond.slot.reserve",
                who=who,
                in_flight=len(self._holders),
                capacity=self.capacity,
            )
        return True

    def release(self, who: str, start_calm_down: bool = True) -> None:
        """Phase 2 (commit or abort): free one of ``who``'s units.

        ``start_calm_down`` is set on successful migrations so the load
        indicators can settle; aborts release immediately.
        """
        if who not in self._holders:
            raise RuntimeError(
                f"no reservation held by {who!r} (holders: {self._holders!r})"
            )
        self._holders.remove(who)
        tr = self.env.tracer
        if tr.enabled:
            tr.event(
                "cond.slot.release",
                who=who,
                calm_down=start_calm_down,
                in_flight=len(self._holders),
            )
        if start_calm_down:
            self._cooldowns.append(self.env.now + self.calm_down)

    def start_calm_down(self) -> None:
        """Enter a calm-down without holding a unit (sender side)."""
        self._cooldowns.append(self.env.now + self.calm_down)


class MigrationSlot(MigrationAdmission):
    """One node's single inbound/outbound migration slot + calm-down
    (the paper's semantics: capacity 1)."""

    def __init__(self, env: Environment, calm_down: float = 10.0) -> None:
        super().__init__(env, capacity=1, calm_down=calm_down)
