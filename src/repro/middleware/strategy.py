"""Pluggable decision-engine strategies and the multi-migration planner.

The paper's decision engine is one hardcoded sender-initiated threshold
loop.  This module splits it into three replaceable layers:

- :class:`ClusterModel` — an immutable per-round snapshot of everything
  a decision can legally depend on: the local load, the peer database's
  latest heartbeats (with the *staleness guard* applied — peers whose
  heartbeat is older than ``ConductorConfig.plan_staleness`` are
  reported but never ranked), failure-detector verdicts, per-process
  CPU shares, admission headroom and a rolling per-node load history.
- :class:`Strategy` — consumes a model, emits a ranked
  :class:`MigrationPlan` of :class:`MigrationAction`\\ s
  ``(proc, source, candidates, score, not_before)``.  Strategies are
  *pure* deciders: they never touch sockets, admission or the wire.
- :class:`Planner` — executes plans through the conductor's existing
  machinery: capacity-N admission, failure-detector veto, two-phase
  reserve and retry-with-backoff.  Actions whose ``not_before`` lies in
  the future are parked and re-validated when due; actions racing
  admission exhaustion are dropped (and show up in the ``planner.*``
  counters / ``plan.*`` trace events rather than silently vanishing).

Three strategies ship in the registry:

- ``paper-threshold`` — the paper's Section-IV loop, extracted verbatim
  from the old ``Conductor._balance_loop``.  With the default
  ``ConductorConfig`` it reproduces the pre-refactor traces
  byte-identically (same policy evaluation order, same rng draws, same
  trace vocabulary — ``plan.*`` events stay off unless asked for).
- ``workload-balance-to-average`` — move the *minimum set* of processes
  that brings this node within a band of the cluster mean; emits
  multi-action plans and spreads them over distinct receivers.
- ``cycle-aware`` — detect periodic load from the sampled history
  (autocorrelation, after Baruchi et al.'s workload-cycle scheduling)
  and defer non-urgent actions into the next forecast trough; deferred
  actions are re-validated at execution time, so triggers caused by a
  transient peak simply evaporate.

Authoring guide: docs/strategies.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .detector import ALIVE
from .loadinfo import LoadInfo
from .policies import (
    LocationPolicy,
    PolicyConfig,
    SelectionPolicy,
    TransferPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..oskern import SimProcess
    from .conductor import Conductor, ConductorConfig

__all__ = [
    "NodeView",
    "ClusterModel",
    "MigrationAction",
    "MigrationPlan",
    "Strategy",
    "PaperThresholdStrategy",
    "BalanceToAverageStrategy",
    "CycleAwareStrategy",
    "Planner",
    "STRATEGIES",
    "register_strategy",
    "make_strategy",
]

#: Samples of per-node load history the planner retains for strategies
#: (at one sample per balance round, ~4 minutes at the default period).
HISTORY_SAMPLES = 256


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NodeView:
    """One node as the decision plane sees it this round."""

    name: str
    ip: object
    cpu_percent: float
    nprocs: int
    #: Seconds since this node's figures were taken (0 for the local node).
    heartbeat_age: float
    #: Failure-detector verdict: ``alive`` / ``suspect`` / ``dead``.
    health: str = ALIVE
    is_self: bool = False

    @property
    def usable(self) -> bool:
        return self.health == ALIVE


@dataclass
class ClusterModel:
    """Snapshot handed to a strategy; everything a plan may depend on.

    Built once per balance round by the :class:`Planner`.  ``peers`` /
    ``peer_infos`` contain only *rankable* peers — the staleness guard
    has already dropped entries whose heartbeat age exceeds the window
    (they are listed in ``stale_peers`` for observability).  ``average``
    is the paper's approximation over **all** known peers plus the local
    node, exactly as the pre-refactor loop computed it.
    """

    now: float
    local: NodeView
    #: Rankable peers (fresh heartbeat), sorted by node name.
    peers: list[NodeView]
    #: Heartbeats too old to rank (known but excluded by the guard).
    stale_peers: list[NodeView]
    #: The raw heartbeat records behind ``peers`` (same order) — these
    #: are what actions carry as candidates.
    peer_infos: list[LoadInfo]
    #: Approximated cluster-wide average CPU including this node.
    average: float
    #: ``(process, cpu-share %)`` for migratable local processes
    #: (managed, not already outbound).
    shares: list[tuple["SimProcess", float]]
    #: Admission units a plan may consume this round (always >= 1 when
    #: the planner consults the strategy at all).
    max_actions: int
    #: Capacity-1 conductors run one blocking migration per round.
    sequential: bool
    config: PolicyConfig
    #: Per-node rolling ``(time, cpu%)`` samples, newest last.  The
    #: local node's series is sampled every balance round; peers at
    #: their heartbeat cadence.
    history: dict[str, Sequence[tuple[float, float]]] = dataclass_field(
        default_factory=dict
    )

    @property
    def overload(self) -> float:
        """Local excess over the cluster average (may be negative)."""
        return self.local.cpu_percent - self.average


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------
@dataclass
class MigrationAction:
    """One planned migration: a process, where from, where to.

    ``candidates`` is the ranked receiver list (best first) the
    conductor's retry machinery walks; it may be empty (the paper's
    loop reserves-then-aborts in that case, and the planner preserves
    that).  ``not_before`` defers execution: the planner parks the
    action and re-validates it when the time comes.
    """

    proc: "SimProcess"
    source: str
    candidates: tuple[LoadInfo, ...] = ()
    #: Strategy-assigned ranking score (CPU share the action moves, by
    #: convention — higher = more load shifted).
    score: float = 0.0
    #: Earliest simulated time this action should execute (0 = now).
    not_before: float = 0.0
    #: Causal id of this action's ``plan.action`` trace record (0 when
    #: plan tracing is off or the tracer is not causal); fate records
    #: and the launched session chain back to it.
    causal_ref: int = 0

    @property
    def destination(self) -> Optional[LoadInfo]:
        return self.candidates[0] if self.candidates else None


@dataclass
class MigrationPlan:
    """A ranked batch of actions emitted by one strategy consultation."""

    strategy: str
    created_at: float
    actions: list[MigrationAction] = dataclass_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
class Strategy:
    """Decision strategy protocol: model in, ranked plan out.

    Implementations must be deterministic given the model and their own
    (explicitly seeded) rng, and must not perform side effects — the
    planner owns execution.  Duck typing suffices; subclassing this
    base is a convenience, not a requirement.
    """

    name = "?"

    def plan(self, model: ClusterModel) -> MigrationPlan:
        raise NotImplementedError

    def revalidate(self, action: MigrationAction, model: ClusterModel) -> bool:
        """Is a *deferred* action still worth executing?  Called by the
        planner when ``not_before`` arrives; structural checks (process
        still managed, candidates still alive) have already passed."""
        return True

    def rerank(
        self, action: MigrationAction, model: ClusterModel
    ) -> tuple[LoadInfo, ...]:
        """Candidate order for a *deferred* action at execution time.
        The default keeps the plan-time ranking; strategies that park
        actions long enough for the ranking to rot may reorder here."""
        return action.candidates


class PaperThresholdStrategy(Strategy):
    """The paper's Section-IV decision loop, as a strategy.

    Extracted from the old ``Conductor._balance_loop`` /
    ``_launch_batch`` so that the default configuration reproduces the
    pre-refactor behaviour — and traces — byte-identically: the same
    transfer-threshold gate, the same selection-then-location policy
    evaluation order (which also preserves rng draw order for
    stochastic policy overrides), the same batch bookkeeping against
    remaining admission capacity.
    """

    name = "paper-threshold"

    def __init__(
        self,
        config: PolicyConfig,
        *,
        transfer: Optional[TransferPolicy] = None,
        location: Optional[LocationPolicy] = None,
        selection: Optional[SelectionPolicy] = None,
    ) -> None:
        self.config = config
        self.transfer = transfer or TransferPolicy(config)
        self.location = location or LocationPolicy(config)
        self.selection = selection or SelectionPolicy(config)

    def plan(self, model: ClusterModel) -> MigrationPlan:
        plan = MigrationPlan(self.name, model.now)
        cfg = self.config
        local = model.local.cpu_percent
        average = model.average
        if not self.transfer.should_initiate(local, average):
            return plan
        target_diff = local - average
        if model.sequential:
            # Paper semantics: one migration per balance round.
            proc = self.selection.choose(
                max(target_diff, cfg.min_share), model.shares
            )
            if proc is None:
                return plan
            candidates = self.location.choose(local, average, model.peer_infos)
            plan.actions.append(
                MigrationAction(
                    proc,
                    model.local.name,
                    tuple(candidates),
                    score=target_diff,
                )
            )
            return plan
        # Batch mode: up to the admission headroom actions, repeatedly
        # picking the process that best matches the *remaining* excess.
        remaining = target_diff
        avail = list(model.shares)
        for _ in range(model.max_actions):
            proc = self.selection.choose(max(remaining, cfg.min_share), avail)
            if proc is None:
                return plan
            candidates = self.location.choose(local, average, model.peer_infos)
            if not candidates:
                return plan
            share = next(s for p, s in avail if p is proc)
            remaining -= share
            avail = [(p, s) for p, s in avail if p is not proc]
            plan.actions.append(
                MigrationAction(
                    proc, model.local.name, tuple(candidates), score=share
                )
            )
        return plan


class BalanceToAverageStrategy(Strategy):
    """Bring this node within a band of the cluster mean, in one plan.

    Where the paper moves exactly one difference-matched process per
    round, this strategy computes the local *excess* over the mean and
    greedily picks the smallest set of processes (largest eligible
    share first, never overshooting past ``band`` below the mean) whose
    departure lands the node inside ``mean ± band``.  Each action gets
    its own receiver, chosen against *projected* receiver loads so one
    multi-migration round does not funnel every process at the same
    peer.  Cluster-wide, every conductor running this strategy pulls
    every node toward the band — tighter distributions than the
    threshold rule, at the price of more (smaller) migrations.
    """

    name = "workload-balance-to-average"

    def __init__(self, config: PolicyConfig, *, band: float = 4.0) -> None:
        if band <= 0:
            raise ValueError("band must be positive")
        self.config = config
        self.band = band

    def plan(self, model: ClusterModel) -> MigrationPlan:
        plan = MigrationPlan(self.name, model.now)
        cfg = self.config
        average = model.average
        excess = model.overload
        if excess <= self.band:
            return plan
        # Receivers: rankable peers with room below the average.
        projected = {
            info.local_ip: info.cpu_percent
            for info in model.peer_infos
            if average - info.cpu_percent >= cfg.receiver_margin
        }
        if not projected:
            return plan
        by_ip = {info.local_ip: info for info in model.peer_infos}
        chosen: list[tuple["SimProcess", float]] = []
        for proc, share in sorted(
            model.shares, key=lambda ps: ps[1], reverse=True
        ):
            if excess <= self.band:
                break
            if share < cfg.min_share:
                continue
            if share > excess + self.band:
                continue  # would overshoot past the band below the mean
            chosen.append((proc, share))
            excess -= share
        for proc, share in chosen:
            # Fill the deepest *projected* trough first — raising the
            # cluster minimum is what narrows the spread — among
            # receivers the move would not push past the band.
            ranked = sorted(projected, key=lambda ip: projected[ip])
            candidates = tuple(
                by_ip[ip]
                for ip in ranked
                if projected[ip] + share <= average + self.band
            )
            if not candidates:
                continue
            projected[candidates[0].local_ip] += share
            plan.actions.append(
                MigrationAction(
                    proc, model.local.name, candidates, score=share
                )
            )
        plan.actions.sort(key=lambda a: a.score, reverse=True)
        return plan

    def revalidate(self, action: MigrationAction, model: ClusterModel) -> bool:
        return model.overload > self.band


class CycleAwareStrategy(Strategy):
    """Defer non-urgent migrations into forecast load troughs.

    Wraps an inner strategy (the paper's threshold rule by default) and
    re-times its plans: when the local load history shows a periodic
    cycle (detected by autocorrelation over the planner's sampled
    series) and the trigger is not urgent, actions are stamped with
    ``not_before = next forecast trough`` instead of executing into the
    peak that tripped the threshold.  When the trough arrives the
    planner re-validates: a trigger that was only the cyclic peak
    itself has evaporated by then and the action is dropped — so
    periodic workloads stop paying migration costs (freeze, transfer
    CPU, calm-down) every cycle, while genuine persistent imbalance
    still migrates, just at the cheapest point of the cycle (after
    Baruchi et al., "Exploiting Workload Cycles").

    Urgency bypass: loads at or above ``critical_threshold``, or an
    overload of ``urgent_factor`` times the imbalance threshold,
    execute immediately — deferral must never sit on a saturated node.
    """

    name = "cycle-aware"

    def __init__(
        self,
        config: PolicyConfig,
        *,
        inner: Optional[Strategy] = None,
        min_cycles: float = 2.5,
        min_autocorr: float = 0.35,
        urgent_factor: float = 2.0,
        mean_margin: Optional[float] = None,
        max_defer: Optional[float] = None,
    ) -> None:
        self.config = config
        self.inner = inner or PaperThresholdStrategy(config)
        self.min_cycles = min_cycles
        self.min_autocorr = min_autocorr
        self.urgent_factor = urgent_factor
        #: Cycle-mean excess over the average that keeps a deferred
        #: action alive at revalidation.  Tighter than the instantaneous
        #: imbalance threshold (half of it by default) because the
        #: cycle-mean carries no periodic noise — a structural excess of
        #: even one process share should still be corrected, just at the
        #: cheap point of the cycle.
        self.mean_margin = (
            mean_margin
            if mean_margin is not None
            else config.imbalance_threshold / 2.0
        )
        #: Cap on how far ahead an action may be deferred (defaults to
        #: one detected period).
        self.max_defer = max_defer
        #: Last detection result, for observability: (period_s, autocorr).
        self.last_cycle: Optional[tuple[float, float]] = None

    # -- cycle detection ---------------------------------------------------
    def detect_cycle(
        self, samples: Sequence[tuple[float, float]]
    ) -> Optional[tuple[float, float]]:
        """Dominant period in a (time, load) series, by autocorrelation.

        Returns ``(period_seconds, autocorrelation)`` or ``None`` when
        the series is too short or shows no cycle stronger than
        ``min_autocorr``.  The series is treated as uniformly sampled
        at its median spacing (the balance loop's cadence).
        """
        import numpy as np

        if len(samples) < 8:
            return None
        times = np.asarray([t for t, _ in samples], dtype=float)
        values = np.asarray([v for _, v in samples], dtype=float)
        dt = float(np.median(np.diff(times)))
        if dt <= 0:
            return None
        x = values - values.mean()
        power = float(np.dot(x, x))
        if power <= 1e-12:
            return None  # flat series: no cycle
        n = len(x)
        max_lag = int(n / self.min_cycles)
        if max_lag < 3:
            return None
        # Normalize each lag by its overlap so long lags aren't biased
        # down, and search only past the first zero-crossing — a smooth
        # series correlates strongly with itself at tiny lags, which is
        # persistence, not periodicity.
        ac = np.array(
            [
                float(np.dot(x[:-lag], x[lag:])) / power * (n / (n - lag))
                for lag in range(1, max_lag)
            ]
        )
        below = np.nonzero(ac < 0)[0]
        if len(below) == 0:
            return None
        start = below[0]
        best = start + int(np.argmax(ac[start:]))
        best_lag, best_ac = best + 1, float(ac[best])
        if best_ac < self.min_autocorr:
            return None
        return best_lag * dt, best_ac

    def forecast_trough(
        self, samples: Sequence[tuple[float, float]], now: float
    ) -> Optional[float]:
        """Next time the local load should bottom out, or ``None``."""
        cycle = self.detect_cycle(samples)
        self.last_cycle = cycle
        if cycle is None:
            return None
        period, _ac = cycle
        # Phase: the minimum-load sample within the last full period.
        recent = [s for s in samples if s[0] >= now - period]
        if not recent:
            return None
        t_min = min(recent, key=lambda s: s[1])[0]
        trough = t_min + period
        while trough <= now:
            trough += period
        horizon = self.max_defer if self.max_defer is not None else period
        if trough - now > horizon:
            return None
        return trough

    # -- the strategy ------------------------------------------------------
    def _urgent(self, model: ClusterModel) -> bool:
        cfg = self.config
        if model.local.cpu_percent >= cfg.critical_threshold:
            return True
        return model.overload >= self.urgent_factor * cfg.imbalance_threshold

    def plan(self, model: ClusterModel) -> MigrationPlan:
        inner = self.inner.plan(model)
        plan = MigrationPlan(self.name, model.now, inner.actions)
        if not plan.actions or self._urgent(model):
            return plan
        samples = model.history.get(model.local.name, ())
        trough = self.forecast_trough(samples, model.now)
        if trough is not None:
            for action in plan.actions:
                action.not_before = trough
        return plan

    def node_mean(
        self, model: ClusterModel, name: str, fallback: float
    ) -> float:
        """A node's load averaged over the last detected period (falls
        back to ``fallback`` without history)."""
        samples = model.history.get(name, ())
        period = self.last_cycle[0] if self.last_cycle else None
        if period is not None:
            samples = [s for s in samples if s[0] >= model.now - period]
        if not samples:
            return fallback
        return sum(v for _, v in samples) / len(samples)

    def cycle_mean(self, model: ClusterModel) -> float:
        """Local load averaged over the last detected period."""
        return self.node_mean(model, model.local.name, model.local.cpu_percent)

    def revalidate(self, action: MigrationAction, model: ClusterModel) -> bool:
        # A deferred trigger must still hold *for the cycle mean*, not
        # the instant: at the trough every node is transiently below
        # the average, so the instantaneous rule would drop genuinely
        # persistent imbalance along with the peak-driven noise.  The
        # cycle-mean separates them — a node carrying structural excess
        # stays above the threshold on average, a node that merely
        # peaked does not.
        if isinstance(self.inner, PaperThresholdStrategy):
            mean = self.cycle_mean(model)
            if mean >= self.config.critical_threshold:
                return True
            return mean - model.average >= self.mean_margin
        return self.inner.revalidate(action, model)

    def rerank(
        self, action: MigrationAction, model: ClusterModel
    ) -> tuple[LoadInfo, ...]:
        # The plan-time ranking compared *instantaneous* loads — at
        # execution time (the trough) those ranks are mostly phase
        # noise.  Judge each candidate by its cycle-mean instead, so the
        # structurally light node ranks first and the excess actually
        # lands instead of hot-potatoing to whichever peer happened to
        # be mid-trough when the plan was made.
        return tuple(
            sorted(
                action.candidates,
                key=lambda c: self.node_mean(
                    model, c.node_name, c.cpu_percent
                ),
            )
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
#: name -> factory(config: ConductorConfig, rng) -> Strategy.  The rng is
#: the conductor's per-node seeded stream (derived from
#: ``ConductorConfig.seed`` and the node address), so stochastic
#: strategies stay trace-deterministic without reaching for module-level
#: randomness.
STRATEGIES: dict[str, Callable[..., Strategy]] = {}


def register_strategy(name: str):
    """Decorator: register a strategy factory under ``name``."""

    def deco(factory: Callable[..., Strategy]):
        if name in STRATEGIES:
            raise ValueError(f"strategy {name!r} already registered")
        STRATEGIES[name] = factory
        return factory

    return deco


def make_strategy(
    name: str, config: "ConductorConfig", rng=None
) -> Strategy:
    """Instantiate a registered strategy for one conductor.

    ``config.strategy_params`` is forwarded to the factory as keyword
    arguments; ``rng`` is the conductor's seeded per-node stream.
    """
    factory = STRATEGIES.get(name)
    if factory is None:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown strategy {name!r} (known: {known})")
    return factory(config, rng, **dict(config.strategy_params))


@register_strategy("paper-threshold")
def _make_paper(config: "ConductorConfig", rng, **params) -> Strategy:
    policies = config.policies
    return PaperThresholdStrategy(
        policies,
        location=config.location_policy or LocationPolicy(policies),
        selection=config.selection_policy or SelectionPolicy(policies),
        **params,
    )


@register_strategy("workload-balance-to-average")
def _make_balance(config: "ConductorConfig", rng, **params) -> Strategy:
    return BalanceToAverageStrategy(config.policies, **params)


@register_strategy("cycle-aware")
def _make_cycle_aware(config: "ConductorConfig", rng, **params) -> Strategy:
    return CycleAwareStrategy(config.policies, **params)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
class Planner:
    """Executes strategy plans through the conductor's machinery.

    One per conductor.  Each balance round it snapshots a
    :class:`ClusterModel`, consults the strategy, and walks the plan's
    actions in rank order: due actions run through the conductor's
    two-phase reserve / detector veto / retry path, future-dated
    actions are parked until ``not_before``, and actions that race
    admission-capacity exhaustion are dropped and re-planned on a later
    round.  Every fate is counted (``planner.*``) and, when plan
    tracing is on, traced (``plan.*``).
    """

    def __init__(self, conductor: "Conductor", strategy: Strategy) -> None:
        self.cond = conductor
        self.strategy = strategy
        self.env = conductor.env
        cfg = conductor.config
        #: Heartbeat-age window beyond which peers are not ranked.
        self.staleness = (
            cfg.plan_staleness
            if cfg.plan_staleness is not None
            else cfg.peer_stale_timeout
        )
        #: ``plan.*`` trace events change the byte stream, so they stay
        #: off for the default strategy (trace byte-identity with the
        #: pre-planner conductor) unless explicitly requested.
        self.trace_plans = (
            cfg.trace_plans
            if cfg.trace_plans is not None
            else strategy.name != PaperThresholdStrategy.name
        )
        self._history: dict[str, deque] = {}
        self._deferred: list[MigrationAction] = []
        # planner.* counters.
        self.plans_total = 0
        self.actions_total = 0
        self.executed_total = 0
        self.retried_total = 0
        self.vetoed_total = 0
        self.aborted_total = 0
        self.deferred_total = 0
        self.dropped_total = 0
        self.stale_skipped_total = 0

        metrics = self.env.metrics
        if metrics is not None:
            node = conductor.host.name
            for suffix, fn in [
                ("plans", lambda: self.plans_total),
                ("actions", lambda: self.actions_total),
                ("executed", lambda: self.executed_total),
                ("retried", lambda: self.retried_total),
                ("vetoed", lambda: self.vetoed_total),
                ("aborted", lambda: self.aborted_total),
                ("deferred", lambda: self.deferred_total),
                ("dropped", lambda: self.dropped_total),
                ("stale_skipped", lambda: self.stale_skipped_total),
                ("pending", lambda: len(self._deferred)),
            ]:
                metrics.gauge(f"planner.{node}.{suffix}", fn=fn)

    # -- model building ----------------------------------------------------
    def build_model(self, local: float, average: float) -> ClusterModel:
        """Snapshot the cluster as this round's strategies may see it."""
        cond = self.cond
        now = self.env.now
        fresh_infos, stale_infos = cond.peers.partition_fresh(
            now, self.staleness
        )
        self.stale_skipped_total += len(stale_infos)

        def view(info: LoadInfo) -> NodeView:
            return NodeView(
                name=info.node_name,
                ip=info.local_ip,
                cpu_percent=info.cpu_percent,
                nprocs=info.nprocs,
                heartbeat_age=info.age(now),
                health=cond.detector.state(info.local_ip),
            )

        local_view = NodeView(
            name=cond.host.name,
            ip=cond.host.local_ip,
            cpu_percent=local,
            nprocs=len(cond.managed),
            heartbeat_age=0.0,
            health=ALIVE,
            is_self=True,
        )
        shares = cond.monitor.process_shares(
            [p for p in cond.managed if p not in cond._outbound]
        )
        sequential = cond.config.admission_capacity == 1
        return ClusterModel(
            now=now,
            local=local_view,
            peers=[view(i) for i in fresh_infos],
            stale_peers=[view(i) for i in stale_infos],
            peer_infos=fresh_infos,
            average=average,
            shares=shares,
            max_actions=1 if sequential else cond.admission.available,
            sequential=sequential,
            config=cond.config.policies,
            history={k: tuple(v) for k, v in self._history.items()},
        )

    def _record_history(self, local: float) -> None:
        now = self.env.now

        def series(name: str) -> deque:
            s = self._history.get(name)
            if s is None:
                s = self._history[name] = deque(maxlen=HISTORY_SAMPLES)
            return s

        series(self.cond.host.name).append((now, local))
        for info in self.cond.peers.peers():
            s = series(info.node_name)
            if not s or s[-1][0] < info.timestamp:
                s.append((info.timestamp, info.cpu_percent))

    # -- the round ---------------------------------------------------------
    def round(self):
        """One balance round (generator; the conductor yields from it)."""
        cond = self.cond
        self._record_history(cond.monitor.current_load())
        if (
            cond.admission.busy
            or cond.admission.calming
            or not cond.peers.peers()
        ):
            return
        local = cond.monitor.current_load()
        average = cond.peers.cluster_average(local)
        model = self.build_model(local, average)
        if self._deferred:
            # A deferred plan is still in flight: execute what has come
            # due, never stack a fresh consultation on top of it.
            yield from self._run_due(model)
            return
        plan = self.strategy.plan(model)
        if not plan.actions:
            return
        self.plans_total += 1
        self.actions_total += len(plan.actions)
        self._trace_plan(plan)
        if model.sequential:
            yield from self._execute_sequential(plan.actions, model)
        else:
            self._launch_batch(plan.actions)

    # -- execution ---------------------------------------------------------
    def _execute_sequential(
        self, actions: list[MigrationAction], model: ClusterModel
    ):
        cond = self.cond
        first = True
        for action in actions:
            if action.not_before > model.now:
                self._park(action)
                continue
            if not first and cond.admission.available <= 0:
                # Racing our own capacity: a committed migration's
                # calm-down (or a concurrent inbound reserve) consumed
                # the admission mid-plan.
                self._drop(action, "admission")
                continue
            first = False
            outcome = yield from cond._try_migrate(
                action.proc,
                list(action.candidates)[: cond.config.max_candidates],
                cause=action.causal_ref,
            )
            self._account(action, outcome)

    def _launch_batch(self, actions: list[MigrationAction]) -> None:
        cond = self.cond
        for action in actions:
            if action.not_before > self.env.now:
                self._park(action)
                continue
            if cond.admission.available <= 0:
                self._drop(action, "admission")
                continue
            if not action.candidates:
                self._drop(action, "no-candidates")
                continue
            proc = action.proc
            cond._outbound.add(proc)
            self.env.process(
                self._run_batch_action(action),
                name=f"cond-session-{proc.pid}",
            )

    def _run_batch_action(self, action: MigrationAction):
        cond = self.cond
        try:
            outcome = yield from cond._try_migrate(
                action.proc,
                list(action.candidates)[: cond.config.max_candidates],
                cause=action.causal_ref,
            )
            self._account(action, outcome)
        finally:
            cond._outbound.discard(action.proc)

    def _run_due(self, model: ClusterModel):
        """Execute parked actions whose ``not_before`` has arrived."""
        cond = self.cond
        due = [a for a in self._deferred if a.not_before <= model.now]
        if not due:
            return
        self._deferred = [a for a in self._deferred if a.not_before > model.now]
        for action in due:
            ok, reason = self._still_valid(action, model)
            if not ok:
                self._drop(action, reason)
                continue
            if cond.admission.available <= 0:
                self._drop(action, "admission")
                continue
            # Re-rank for execution time (strategy hook), then drop
            # dead/stale candidates that fell out of the model while
            # the action was parked.
            live = {info.local_ip for info in model.peer_infos}
            candidates = [
                c
                for c in self.strategy.rerank(action, model)
                if c.local_ip in live
            ]
            outcome = yield from cond._try_migrate(
                action.proc,
                candidates[: cond.config.max_candidates],
                cause=action.causal_ref,
            )
            self._account(action, outcome)

    def _still_valid(
        self, action: MigrationAction, model: ClusterModel
    ) -> tuple[bool, str]:
        if action.proc not in self.cond.managed:
            return False, "unmanaged"
        if action.proc in self.cond._outbound:
            return False, "in-flight"
        live = {info.local_ip for info in model.peer_infos}
        if not any(c.local_ip in live for c in action.candidates):
            return False, "no-candidates"
        if not self.strategy.revalidate(action, model):
            return False, "revalidated"
        return True, ""

    # -- bookkeeping -------------------------------------------------------
    def _park(self, action: MigrationAction) -> None:
        self.deferred_total += 1
        self._deferred.append(action)
        tr = self.env.tracer
        if self.trace_plans and tr.enabled:
            tr.event(
                "plan.defer",
                caused_by=action.causal_ref or None,
                node=self.cond.host.name,
                strategy=self.strategy.name,
                pid=action.proc.pid,
                until=action.not_before,
            )

    def _drop(self, action: MigrationAction, reason: str) -> None:
        self.dropped_total += 1
        tr = self.env.tracer
        if self.trace_plans and tr.enabled:
            tr.event(
                "plan.drop",
                caused_by=action.causal_ref or None,
                node=self.cond.host.name,
                strategy=self.strategy.name,
                pid=action.proc.pid,
                reason=reason,
            )

    def _account(self, action: MigrationAction, outcome: dict) -> None:
        kind = classify_outcome(outcome)
        if kind == "executed":
            self.executed_total += 1
        elif kind == "retried":
            self.retried_total += 1
        elif kind == "vetoed":
            self.vetoed_total += 1
        else:
            self.aborted_total += 1
        tr = self.env.tracer
        if self.trace_plans and tr.enabled:
            dest = action.destination
            tr.event(
                "plan.outcome",
                caused_by=action.causal_ref or None,
                node=self.cond.host.name,
                strategy=self.strategy.name,
                pid=action.proc.pid,
                dest=dest.node_name if dest is not None else None,
                outcome=kind,
                attempts=outcome.get("attempts", 0),
            )

    def _trace_plan(self, plan: MigrationPlan) -> None:
        tr = self.env.tracer
        if not (self.trace_plans and tr.enabled):
            return
        # Under a causal tracer each plan.action carries the emitting
        # plan as its parent/cause and gets its own ref; the action's
        # later fate records (defer/drop/outcome) and the conductor's
        # cond.decision link back to it via ``action.causal_ref``.
        plan_ref = tr.event(
            "plan.emitted",
            ref=True,
            node=self.cond.host.name,
            strategy=plan.strategy,
            actions=len(plan.actions),
        )
        for action in plan.actions:
            dest = action.destination
            action.causal_ref = tr.event(
                "plan.action",
                parent=plan_ref or None,
                caused_by=plan_ref or None,
                ref=True,
                node=self.cond.host.name,
                strategy=plan.strategy,
                pid=action.proc.pid,
                proc=action.proc.name,
                dest=dest.node_name if dest is not None else None,
                score=action.score,
                not_before=action.not_before,
            )

    @property
    def pending(self) -> list[MigrationAction]:
        """Parked (deferred) actions, for tests and dashboards."""
        return list(self._deferred)


def classify_outcome(outcome: dict) -> str:
    """Fold a ``Conductor._try_migrate`` outcome into the plan-report
    vocabulary: executed / retried / vetoed / aborted."""
    if outcome.get("success"):
        return "executed" if outcome.get("attempts", 0) == 0 else "retried"
    if outcome.get("attempts", 0) == 0:
        return "vetoed"
    return "aborted"
