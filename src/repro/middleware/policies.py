"""The four load-balancing policies (Section IV, after Shivaratri/
Krueger/Singhal's taxonomy [17]).

- *Transfer policy*: threshold-driven on the sender — initiate when the
  local load exceeds a critical threshold or exceeds the approximated
  cluster average by a margin.  (The receiver side is the two-phase
  commit in :mod:`twophase`.)
- *Location policy*: find a peer whose load sits on the *opposite side*
  of the cluster average, about as far below it as the sender is above —
  so both converge to the average after the migration.
- *Selection policy*: pick the process whose CPU share best matches the
  local-load-minus-average difference.
- *Information policy*: periodic broadcast of load heartbeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..oskern import SimProcess
from .loadinfo import LoadInfo

__all__ = [
    "PolicyConfig",
    "TransferPolicy",
    "LocationPolicy",
    "SelectionPolicy",
    "InformationPolicy",
]


@dataclass(frozen=True)
class PolicyConfig:
    """Shared policy tunables."""

    #: Local load (%) above which a node always tries to shed work.
    critical_threshold: float = 90.0
    #: Initiate also when local load exceeds the cluster average by this.
    imbalance_threshold: float = 12.0
    #: Candidate receivers must sit at least this far below the average.
    receiver_margin: float = 3.0
    #: A migrated process must carry at least this much CPU share (%).
    min_share: float = 0.5
    #: Don't pick a process bigger than target_diff * this factor.
    max_overshoot: float = 1.8
    #: Heartbeat period for the information policy (seconds).
    heartbeat_interval: float = 1.0


class TransferPolicy:
    """Sender-initiated, threshold-driven (Section IV-A)."""

    def __init__(self, config: PolicyConfig) -> None:
        self.config = config

    def should_initiate(self, local_load: float, cluster_average: float) -> bool:
        cfg = self.config
        if local_load >= cfg.critical_threshold:
            return True
        return (local_load - cluster_average) >= cfg.imbalance_threshold


class LocationPolicy:
    """Pick the receiver on the opposite side of the average
    (Section IV-B)."""

    def __init__(self, config: PolicyConfig) -> None:
        self.config = config

    def choose(
        self,
        local_load: float,
        cluster_average: float,
        peers: Sequence[LoadInfo],
    ) -> list[LoadInfo]:
        """Candidate receivers, best first.

        The ideal receiver is as much *below* the average as the sender
        is above it; returning a ranked list lets the conductor fall
        back when the best candidate declines the two-phase commit.
        """
        overload = local_load - cluster_average
        candidates = [
            p
            for p in peers
            if cluster_average - p.cpu_percent >= self.config.receiver_margin
        ]
        return sorted(
            candidates,
            key=lambda p: abs((cluster_average - p.cpu_percent) - overload),
        )


class LeastLoadedLocationPolicy(LocationPolicy):
    """Baseline alternative: always pick the lightest node.

    Simpler than the paper's opposite-side-of-average policy, but it
    funnels every sender's migrations at the same receiver, overshooting
    it below the average and inviting follow-up migrations.
    """

    def choose(
        self,
        local_load: float,
        cluster_average: float,
        peers: Sequence[LoadInfo],
    ) -> list[LoadInfo]:
        candidates = [
            p
            for p in peers
            if cluster_average - p.cpu_percent >= self.config.receiver_margin
        ]
        return sorted(candidates, key=lambda p: p.cpu_percent)


class RandomLocationPolicy(LocationPolicy):
    """Baseline alternative: any below-average receiver, random order.

    The rng must be an *explicitly seeded* generator (e.g. a named
    ``RngRegistry`` stream, or the conductor's per-node strategy stream)
    — there is deliberately no module-level fallback, because an
    unseeded source would make strategy comparisons unreproducible:
    two same-seed runs would rank receivers differently and their
    traces would diverge.
    """

    def __init__(self, config: PolicyConfig, rng) -> None:
        super().__init__(config)
        if rng is None or not hasattr(rng, "permutation"):
            raise TypeError(
                "RandomLocationPolicy needs an explicitly seeded numpy "
                "Generator (e.g. RngRegistry(seed).stream('location')); "
                f"got {rng!r}"
            )
        self.rng = rng

    def choose(
        self,
        local_load: float,
        cluster_average: float,
        peers: Sequence[LoadInfo],
    ) -> list[LoadInfo]:
        candidates = [
            p
            for p in peers
            if cluster_average - p.cpu_percent >= self.config.receiver_margin
        ]
        order = self.rng.permutation(len(candidates))
        return [candidates[i] for i in order]


class SelectionPolicy:
    """Pick the process matching the load difference (Section IV-C)."""

    def __init__(self, config: PolicyConfig) -> None:
        self.config = config

    def choose(
        self,
        target_diff: float,
        shares: Sequence[tuple[SimProcess, float]],
    ) -> Optional[SimProcess]:
        """The process whose CPU share best approximates ``target_diff``
        (the local node's excess over the cluster average)."""
        cfg = self.config
        eligible = [
            (proc, share)
            for proc, share in shares
            if share >= cfg.min_share and share <= target_diff * cfg.max_overshoot
        ]
        if not eligible:
            return None
        proc, _share = min(eligible, key=lambda ps: abs(ps[1] - target_diff))
        return proc


class LargestProcessSelectionPolicy(SelectionPolicy):
    """Baseline alternative: always shed the biggest eligible process.

    Greedy shedding overshoots: the paper's matched selection aims to
    land *both* nodes on the cluster average, the greedy one just dumps
    load — often turning the sender into the new under-loaded node.
    """

    def choose(
        self,
        target_diff: float,
        shares: Sequence[tuple[SimProcess, float]],
    ) -> Optional[SimProcess]:
        eligible = [
            (proc, share) for proc, share in shares if share >= self.config.min_share
        ]
        if not eligible:
            return None
        proc, _share = max(eligible, key=lambda ps: ps[1])
        return proc


class InformationPolicy:
    """Periodic heartbeat broadcast (Section IV-D)."""

    def __init__(self, config: PolicyConfig) -> None:
        self.config = config

    @property
    def interval(self) -> float:
        return self.config.heartbeat_interval
