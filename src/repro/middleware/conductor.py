"""The conductor daemon (``cond``, Section IV).

One per node.  It discovers its peers on the cluster network, monitors
local resource consumption (via the atop-like :class:`LoadMonitor`),
broadcasts periodic load heartbeats, and — being sender-initiated —
decides when to shed a process.  The *decision* is delegated to a
pluggable strategy (:mod:`repro.middleware.strategy`): each balance
round the conductor's :class:`~repro.middleware.strategy.Planner`
snapshots a ``ClusterModel``, asks the configured strategy for a ranked
``MigrationPlan``, and executes it through the two-phase admission,
failure-detector veto and retry machinery here.  The default strategy,
``paper-threshold``, is the paper's Section-IV loop (transfer policy
says *whether*, selection policy says *which*, location policy says
*where*) and reproduces the pre-strategy traces byte-identically.  The
actual transfer is carried out by the migration daemon
(:mod:`repro.core.migd`) through
:class:`~repro.core.precopy.LiveMigrationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Optional

from ..core import (
    LiveMigrationConfig,
    LiveMigrationEngine,
    MigrationReport,
    RetryPolicy,
)
from ..net import IPAddr
from ..oskern import SimProcess
from ..oskern.node import Host
from .detector import FailureDetector
from .loadinfo import LoadInfo, PeerDatabase
from .monitor import LoadMonitor
from .policies import (
    InformationPolicy,
    LocationPolicy,
    PolicyConfig,
    SelectionPolicy,
    TransferPolicy,
)
from .strategy import Planner, make_strategy
from .twophase import MigrationAdmission

__all__ = ["CONDUCTOR_PORT", "ConductorConfig", "Conductor", "install_conductor"]

CONDUCTOR_PORT = 7300


@dataclass
class ConductorConfig:
    """Conductor tunables."""

    policies: PolicyConfig = dataclass_field(default_factory=PolicyConfig)
    migration: LiveMigrationConfig = dataclass_field(default_factory=LiveMigrationConfig)
    #: Balance-decision period (seconds).
    check_interval: float = 1.0
    #: atop sampling period.
    monitor_interval: float = 1.0
    #: Heartbeats older than this mark a departed peer.
    peer_stale_timeout: float = 5.0
    #: Control RPCs to peers (discover, reserve) fail after this much
    #: silence instead of hanging the calling loop — a crashed or
    #: partitioned peer must look like an error, not a stuck conductor.
    peer_rpc_timeout: float = 2.0
    #: Failure detector: silence past this marks a peer *suspect* (no
    #: new work is sent its way) ...
    suspect_timeout: float = 2.5
    #: ... and past this marks it *dead* (in-flight sessions targeting
    #: it should abort, roll back and retry elsewhere).
    dead_timeout: float = 5.0
    #: Heartbeat-period jitter fraction (±10% by default), drawn from a
    #: per-node seeded stream, so a cluster's conductors neither
    #: heartbeat in lockstep nor desynchronize between runs.
    heartbeat_jitter: float = 0.1
    #: Retry-with-backoff budget applied when a migration attempt fails
    #: and other ranked candidates remain.
    retry: RetryPolicy = dataclass_field(default_factory=RetryPolicy)
    #: Indicator stabilisation period after a migration (Section IV-A).
    calm_down: float = 10.0
    #: How many ranked receiver candidates to try per round.
    max_candidates: int = 3
    #: Concurrent migration sessions this node admits (inbound and
    #: outbound share the capacity).  1 = the paper's single slot; >1
    #: lets the balance loop launch several sessions per round.
    admission_capacity: int = 1
    #: Policy overrides (defaults: the paper's opposite-side-of-average
    #: location policy and difference-matched selection policy).  The
    #: ``paper-threshold`` strategy honours these; other strategies may
    #: ignore them.
    location_policy: Optional[LocationPolicy] = None
    selection_policy: Optional[SelectionPolicy] = None
    #: Decision strategy, by registry name (``repro.middleware.strategy``).
    #: The default reproduces the pre-strategy conductor byte-identically.
    strategy: str = "paper-threshold"
    #: Keyword arguments forwarded to the strategy factory (e.g.
    #: ``{"band": 5.0}`` for ``workload-balance-to-average``).
    strategy_params: dict = dataclass_field(default_factory=dict)
    #: Master seed for the conductor's per-node strategy rng stream
    #: (combined with the node address, so every node draws its own
    #: deterministic stream).  Stochastic strategies and policies —
    #: ``RandomLocationPolicy`` via the registry — must use this stream
    #: rather than module-level randomness.
    seed: int = 0
    #: Staleness guard window (seconds): the planner reports peers whose
    #: last heartbeat is older than this but never ranks them as
    #: migration candidates.  ``None`` = reuse ``peer_stale_timeout``.
    plan_staleness: Optional[float] = None
    #: Emit ``plan.*`` trace events.  ``None`` = auto: on for every
    #: strategy except ``paper-threshold`` (whose traces must stay
    #: byte-identical with the pre-planner conductor).
    trace_plans: Optional[bool] = None


@dataclass(frozen=True)
class MigrationEvent:
    """A completed (or failed) migration, for the experiment logs."""

    time: float
    pid: int
    process_name: str
    source: str
    destination: str
    #: ``None`` when the migration failed before the thaw (the freeze
    #: interval never completed — see ``MigrationReport.freeze_time``).
    freeze_time: Optional[float]
    success: bool
    #: Session id string (``source>dest#pid``).
    session: str = ""


class Conductor:
    """The per-node load-balancing daemon."""

    def __init__(
        self,
        host: Host,
        scan_ips: list[IPAddr],
        resolve_host: Callable[[IPAddr], Host],
        config: Optional[ConductorConfig] = None,
    ) -> None:
        self.host = host
        self.env = host.env
        self.config = config or ConductorConfig()
        cfg = self.config
        self.resolve_host = resolve_host
        self.scan_ips = [ip for ip in scan_ips if ip != host.local_ip]

        self.monitor = LoadMonitor(host, interval=cfg.monitor_interval)
        self.peers = PeerDatabase(stale_timeout=cfg.peer_stale_timeout)
        self.detector = FailureDetector(
            self.env,
            suspect_timeout=cfg.suspect_timeout,
            dead_timeout=cfg.dead_timeout,
            node=host.name,
        )
        self.admission = MigrationAdmission(
            self.env, capacity=cfg.admission_capacity, calm_down=cfg.calm_down
        )
        #: Processes with an outbound session in flight (batch mode).
        self._outbound: set[SimProcess] = set()
        self.transfer = TransferPolicy(cfg.policies)
        self.location = cfg.location_policy or LocationPolicy(cfg.policies)
        self.selection = cfg.selection_policy or SelectionPolicy(cfg.policies)
        self.information = InformationPolicy(cfg.policies)

        # The decision plane: a per-node seeded rng stream (master seed
        # combined with the node address — deterministic, unlike Python's
        # randomized hash()), the configured strategy, and the planner
        # that executes its plans through the admission/retry machinery.
        import zlib

        import numpy as np

        self.strategy_rng = np.random.default_rng(
            [cfg.seed, zlib.crc32(host.local_ip.value.encode())]
        )
        self.strategy = make_strategy(cfg.strategy, cfg, self.strategy_rng)
        self.planner = Planner(self, self.strategy)

        #: Zone-server processes this conductor may migrate.
        self.managed: list[SimProcess] = []
        self.events: list[MigrationEvent] = []
        self.migrations_initiated = 0
        self.migrations_received = 0
        self.reserve_rejections = 0
        #: Failed migration attempts (each may trigger a retry) and
        #: processes given up on after the retry budget ran out.
        self.retries_total = 0
        self.giveups_total = 0
        self.enabled = True

        metrics = self.env.metrics
        if metrics is not None:
            metrics.gauge(
                f"cond.{host.name}.initiated", fn=lambda: self.migrations_initiated
            )
            metrics.gauge(
                f"cond.{host.name}.received", fn=lambda: self.migrations_received
            )
            metrics.gauge(
                f"cond.{host.name}.rejections", fn=lambda: self.reserve_rejections
            )
            metrics.gauge(
                f"cond.{host.name}.peers_known", fn=lambda: len(self.peers)
            )
            metrics.gauge(
                f"cond.{host.name}.peers_stale_total",
                fn=lambda: self.peers.stale_total,
            )
            metrics.gauge(
                f"cond.{host.name}.peers_suspect",
                fn=lambda: len(self.detector.suspects()),
            )
            metrics.gauge(
                f"cond.{host.name}.peers_dead_total",
                fn=lambda: self.detector.deaths_total,
            )
            metrics.gauge(
                f"cond.{host.name}.retries_total", fn=lambda: self.retries_total
            )
            metrics.gauge(
                f"cond.{host.name}.giveups_total", fn=lambda: self.giveups_total
            )

        host.control.register(CONDUCTOR_PORT, self._handle)
        self.env.process(self._discover(), name=f"cond-discover-{host.name}")
        self.env.process(self._heartbeat_loop(), name=f"cond-heartbeat-{host.name}")
        self.env.process(self._balance_loop(), name=f"cond-balance-{host.name}")

    @property
    def slot(self) -> MigrationAdmission:
        """Back-compat name for the admission (capacity 1 = the slot)."""
        return self.admission

    # -- management ------------------------------------------------------------
    def manage(self, proc: SimProcess) -> None:
        if proc not in self.managed:
            self.managed.append(proc)

    def unmanage(self, proc: SimProcess) -> None:
        if proc in self.managed:
            self.managed.remove(proc)

    def leave(self) -> None:
        """Graceful departure: notify peers and go quiet.

        Peers drop this node immediately instead of waiting for its
        heartbeats to go stale; the balance loop stops initiating.
        """
        self.enabled = False
        for peer in self.peers.peers():
            self.host.control.send(
                peer.local_ip, CONDUCTOR_PORT, {"op": "leave"}, size=32
            )
        self.peers._peers.clear()  # stop heartbeating to anyone
        self.host.control.unregister(CONDUCTOR_PORT)

    def load_info(self) -> LoadInfo:
        return LoadInfo(
            node_name=self.host.name,
            local_ip=self.host.local_ip,
            cpu_percent=self.monitor.current_load(),
            nprocs=len(self.managed),
            timestamp=self.env.now,
        )

    # -- protocol handler ----------------------------------------------------------
    def _handle(self, body: dict, src_ip: IPAddr, respond) -> None:
        op = body.get("op")
        if op == "discover":
            # Mutual exchange: learn the prober, tell it about us.
            self.peers.update(body["info"])
            self.detector.heard_from(body["info"].local_ip, body["info"].node_name)
            if respond:
                respond({"info": self.load_info()})
        elif op == "heartbeat":
            self.peers.update(body["info"])
            self.detector.heard_from(body["info"].local_ip, body["info"].node_name)
        elif op == "reserve":
            ok = self.admission.try_reserve(body["sender"])
            if not ok:
                self.reserve_rejections += 1
            tr = self.env.tracer
            if tr.enabled:
                tr.event(
                    "cond.reserve",
                    node=self.host.name,
                    sender=body["sender"],
                    granted=ok,
                )
            if respond:
                respond({"ok": ok, "info": self.load_info()})
        elif op == "release":
            who = body["sender"]
            tr = self.env.tracer
            if tr.enabled:
                tr.event(
                    "cond.release",
                    node=self.host.name,
                    sender=who,
                    committed=body.get("committed", True),
                )
            if who in self.admission.holders:
                self.admission.release(who, start_calm_down=body.get("committed", True))
            if body.get("committed") and body.get("pid") is not None:
                proc = self.host.kernel.processes.get(body["pid"])
                if proc is not None:
                    self.manage(proc)
                    self.migrations_received += 1
            if respond:
                respond({"ok": True})
        elif op == "leave":
            self.peers.remove(src_ip)
            self.detector.forget(src_ip)
            if respond:
                respond({"ok": True})
        else:
            if respond:
                respond(f"conductor: unknown op {op!r}", error=True)

    # -- daemon loops -----------------------------------------------------------------
    def _discover(self):
        """Scan the local network for other conductor nodes."""
        for ip in self.scan_ips:
            try:
                reply = yield self.host.control.rpc(
                    ip,
                    CONDUCTOR_PORT,
                    {"op": "discover", "info": self.load_info()},
                    size=128,
                    timeout=self.config.peer_rpc_timeout,
                )
                self.peers.update(reply["info"])
            except Exception:
                continue  # nobody answering on that address

    def _heartbeat_loop(self):
        # Jitter each period by ±heartbeat_jitter, from a per-node
        # seeded stream (same deterministic-hash trick as the balance
        # loop's phase offset): conductors drift apart instead of
        # heartbeating in lockstep, yet every run replays identically.
        import zlib

        import numpy as np

        jitter_rng = np.random.default_rng(
            zlib.crc32(self.host.local_ip.value.encode())
        )
        jitter = self.config.heartbeat_jitter
        while True:
            period = self.information.interval
            if jitter:
                period *= 1.0 + jitter * (2.0 * jitter_rng.random() - 1.0)
            yield self.env.timeout(period)
            self.peers.prune_stale(self.env.now)
            self.detector.check()
            info = self.load_info()
            tr = self.env.tracer
            if tr.enabled:
                tr.event(
                    "cond.heartbeat",
                    node=self.host.name,
                    cpu=info.cpu_percent,
                    nprocs=info.nprocs,
                    peers=len(self.peers.peers()),
                )
            for peer in self.peers.peers():
                self.host.control.send(
                    peer.local_ip, CONDUCTOR_PORT, {"op": "heartbeat", "info": info}, size=96
                )

    def _balance_loop(self):
        # Small phase offset so conductors don't act in lockstep —
        # derived from the node's address with a *deterministic* hash
        # (Python's str hash is randomized per process, which would make
        # whole experiments unreproducible).
        import zlib

        phase = (
            (zlib.crc32(self.host.local_ip.value.encode()) % 997)
            / 997
            * self.config.check_interval
        )
        yield self.env.timeout(phase)
        while True:
            yield self.env.timeout(self.config.check_interval)
            if not self.enabled:
                continue
            # One planner round: snapshot the cluster model, consult the
            # strategy, execute the plan through admission/retry.
            yield from self.planner.round()

    def _try_migrate(
        self, proc: SimProcess, candidates: list[LoadInfo], cause: int = 0
    ):
        """Walk the ranked candidates with retry-with-backoff.

        A failed attempt leaves the process safe on the source (the
        engine rolled back), so recovery is policy: back off, consult
        the failure detector again, and try the next candidate, until
        the retry budget runs out.  A reserve that goes unanswered also
        burns an attempt — that silence is exactly what a dead
        destination looks like before the detector has declared it.

        ``cause`` is the causal id of the plan action that requested the
        migration (0 = none); under a causal tracer the recovery
        decisions and the launch decision chain back to it.

        Returns an outcome dict for the planner's accounting:
        ``{"success", "attempts", "reserved"}`` — ``attempts`` counts
        *failed* attempts that burned retry budget, so a clean first-try
        migration reports ``attempts == 0``.
        """
        me = self.host.name
        if not self.admission.try_reserve(me):
            return {"success": False, "attempts": 0, "reserved": False}
        policy = self.config.retry
        tr = self.env.tracer
        attempt = 0
        failed = 0
        for candidate in candidates:
            if attempt >= policy.max_attempts:
                break
            if attempt > 0:
                delay = policy.backoff(attempt - 1)
                if tr.enabled:
                    tr.event(
                        "recover.backoff",
                        caused_by=cause or None,
                        node=me,
                        pid=proc.pid,
                        attempt=attempt,
                        delay=delay,
                    )
                yield self.env.timeout(delay)
            if not self.detector.usable(candidate.local_ip):
                if tr.enabled:
                    tr.event(
                        "recover.skip",
                        caused_by=cause or None,
                        node=me,
                        pid=proc.pid,
                        dest=candidate.node_name,
                        state=self.detector.state(candidate.local_ip),
                    )
                continue
            try:
                reply = yield self.host.control.rpc(
                    candidate.local_ip,
                    CONDUCTOR_PORT,
                    {"op": "reserve", "sender": me},
                    size=96,
                    timeout=self.config.peer_rpc_timeout,
                )
            except Exception:
                attempt += 1
                failed += 1
                self.retries_total += 1
                if tr.enabled:
                    tr.event(
                        "recover.retry",
                        caused_by=cause or None,
                        node=me,
                        pid=proc.pid,
                        attempt=attempt,
                        dest=candidate.node_name,
                        error="reserve unanswered",
                    )
                continue
            self.detector.heard_from(candidate.local_ip, candidate.node_name)
            self.peers.update(reply["info"])
            if not reply["ok"]:
                # Busy, not broken: next candidate, no budget burned.
                continue
            # Phase 2: committed — run the live migration.
            dest = self.resolve_host(candidate.local_ip)
            self.migrations_initiated += 1
            engine = LiveMigrationEngine(self.host, dest, proc, self.config.migration)
            session = engine.session.label
            if tr.enabled:
                # Seed the session's causal chain: mig.start (and the
                # whole migration DAG under it) links back to this
                # launch decision, which links back to the plan action.
                decision_ref = tr.event(
                    "cond.decision",
                    caused_by=cause or None,
                    ref=True,
                    node=me,
                    pid=proc.pid,
                    session=session,
                    proc=proc.name,
                    dest=dest.name,
                    attempt=attempt,
                )
                if decision_ref:
                    engine.session.causal_ref = decision_ref
            report: MigrationReport = yield engine.start()
            self.events.append(
                MigrationEvent(
                    time=self.env.now,
                    pid=proc.pid,
                    process_name=proc.name,
                    source=me,
                    destination=dest.name,
                    freeze_time=report.freeze_time,
                    success=report.success,
                    session=session,
                )
            )
            # Release the receiver's slot either way; only a committed
            # release transfers management of the process to it.
            self.host.control.send(
                candidate.local_ip,
                CONDUCTOR_PORT,
                {
                    "op": "release",
                    "sender": me,
                    "committed": report.success,
                    "pid": proc.pid,
                },
                size=96,
            )
            if report.success:
                self.unmanage(proc)
                self.admission.release(me, start_calm_down=True)
                return {"success": True, "attempts": attempt, "reserved": True}
            attempt += 1
            failed += 1
            self.retries_total += 1
            if tr.enabled:
                tr.event(
                    "recover.retry",
                    caused_by=cause or None,
                    node=me,
                    pid=proc.pid,
                    session=session,
                    attempt=attempt,
                    dest=dest.name,
                    error=report.error,
                )
        if failed:
            self.giveups_total += 1
            if tr.enabled:
                tr.event(
                    "recover.giveup",
                    caused_by=cause or None,
                    node=me,
                    pid=proc.pid,
                    attempts=attempt,
                )
        # Nobody accepted (or nothing landed): abort our own reservation
        # without calm-down — the process is still here to balance.
        self.admission.release(me, start_calm_down=False)
        return {"success": False, "attempts": attempt, "reserved": True}


def install_conductor(
    host: Host,
    scan_ips: list[IPAddr],
    resolve_host: Callable[[IPAddr], Host],
    config: Optional[ConductorConfig] = None,
) -> Conductor:
    """Install (or fetch) the conductor on a host."""
    daemon = host.daemons.get("conductor")
    if daemon is None:
        daemon = Conductor(host, scan_ips, resolve_host, config)
        host.daemons["conductor"] = daemon
    return daemon
