"""Power management by consolidation (a Section-VIII future-work case).

The paper's conclusion suggests process live migration that keeps
network connections alive could also serve power management.  This
extension implements it on the same primitives: when the approximated
cluster load is low, a *consolidator* drains the least-loaded node by
live-migrating its processes to peers with headroom, until the node is
empty and can be powered down; when load rises again, drained nodes are
woken and the regular balancing takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Optional

from ..core import LiveMigrationConfig, LiveMigrationEngine
from ..oskern import SimProcess
from ..oskern.node import Host

__all__ = ["ConsolidationConfig", "Consolidator"]


@dataclass
class ConsolidationConfig:
    """Consolidation tunables."""

    #: Consider consolidating when cluster average CPU is below this (%).
    low_watermark: float = 35.0
    #: Never load a consolidation target above this (%).
    target_cap: float = 75.0
    #: Wake a sleeping node when cluster average exceeds this (%).
    wake_watermark: float = 65.0
    check_interval: float = 2.0
    migration: LiveMigrationConfig = dataclass_field(
        default_factory=lambda: LiveMigrationConfig(initial_round_timeout=0.08)
    )


@dataclass
class PowerEvent:
    time: float
    action: str  # "sleep" | "wake" | "migrate"
    node: str
    detail: str = ""


class Consolidator:
    """Cluster-wide consolidation driver.

    Unlike the fully decentralized conductor, consolidation is modelled
    as a coordinator (in practice it would be elected or run on a
    management node) because power decisions are inherently global.
    It reuses each node's conductor for monitoring and its migration
    slot for admission, so balancing and consolidation never fight over
    a node simultaneously.
    """

    def __init__(
        self,
        hosts: list[Host],
        resolve_processes: Callable[[Host], list[SimProcess]],
        config: Optional[ConsolidationConfig] = None,
    ) -> None:
        if not hosts:
            raise ValueError("need at least one host")
        self.hosts = hosts
        self.env = hosts[0].env
        self.config = config or ConsolidationConfig()
        self.resolve_processes = resolve_processes
        #: Nodes currently drained/powered down.
        self.sleeping: set[str] = set()
        self.events: list[PowerEvent] = []
        self.enabled = True
        self.env.process(self._loop(), name="consolidator")

    # -- queries ----------------------------------------------------------
    def _load(self, host: Host) -> float:
        return host.kernel.cpu.utilization()

    def awake_hosts(self) -> list[Host]:
        return [h for h in self.hosts if h.name not in self.sleeping]

    def cluster_average(self) -> float:
        awake = self.awake_hosts()
        return sum(self._load(h) for h in awake) / len(awake)

    def nodes_asleep(self) -> int:
        return len(self.sleeping)

    # -- power mode vs. balancing -------------------------------------------
    def _set_balancing(self, enabled: bool) -> None:
        """Suspend/resume the regular load balancers.

        Consolidation and spreading are opposing objectives; while the
        cluster is in power mode the conductors' balance loops pause,
        and they resume as soon as load rises again.
        """
        for host in self.hosts:
            cond = host.daemons.get("conductor")
            if cond is not None:
                cond.enabled = enabled

    def _sleep_node(self, host: Host) -> None:
        self.sleeping.add(host.name)
        self.events.append(PowerEvent(self.env.now, "sleep", host.name))

    def _hold_sleeping_slot(self, host: Host) -> None:
        """Hold the node's migration slot so no in-flight balancing or
        reservation can target a powered-down node."""
        slot = self._slot(host)
        if slot is not None and not slot.busy:
            slot.try_reserve("consolidator-sleep")

    def _wake_node(self, name: str) -> None:
        self.sleeping.discard(name)
        host = next(h for h in self.hosts if h.name == name)
        slot = self._slot(host)
        if slot is not None and slot.reserved_by == "consolidator-sleep":
            slot.release("consolidator-sleep", start_calm_down=False)
        self.events.append(PowerEvent(self.env.now, "wake", name))

    # -- the loop -----------------------------------------------------------
    def _loop(self):
        while True:
            yield self.env.timeout(self.config.check_interval)
            if not self.enabled:
                continue
            awake = self.awake_hosts()
            # Overload of any awake node ends power mode: wake a node
            # (the average alone is a hysteresis trap — a freshly woken
            # idle node halves it) and let balancing spread the load.
            if max(self._load(h) for h in awake) > self.config.wake_watermark:
                if self.sleeping:
                    self._wake_node(next(iter(self.sleeping)))
                self._set_balancing(True)
                continue
            if self.cluster_average() >= self.config.low_watermark:
                # Out of power mode: normal balancing runs.
                self._set_balancing(True)
                continue
            if len(awake) < 2:
                continue
            # Power mode: balancing pauses while we consolidate.
            self._set_balancing(False)
            yield from self._drain_one(awake)

    def _drain_one(self, awake: list[Host]):
        """Try to empty the least-loaded node into its peers."""
        cfg = self.config
        tr = self.env.tracer
        source = min(awake, key=self._load)
        procs = list(self.resolve_processes(source))
        slot = self._slot(source)
        if slot is not None and not slot.try_reserve("consolidator"):
            return

        # A drain is a plan too: same ``plan.*`` vocabulary as the
        # conductor's planner, under the "consolidate" strategy name.
        if tr.enabled and procs:
            tr.event(
                "plan.emitted",
                node=source.name,
                strategy="consolidate",
                actions=len(procs),
            )
        try:
            drained = True
            for proc in procs:
                target = self._pick_target(source, proc)
                if target is None:
                    if tr.enabled:
                        tr.event(
                            "plan.drop",
                            node=source.name,
                            strategy="consolidate",
                            pid=proc.pid,
                            reason="no-candidates",
                        )
                    drained = False
                    break
                if tr.enabled:
                    tr.event(
                        "plan.action",
                        node=source.name,
                        strategy="consolidate",
                        pid=proc.pid,
                        proc=proc.name,
                        dest=target.name,
                        score=100.0 * proc.cpu_demand
                        / max(1, source.kernel.cpu.cores),
                        not_before=0.0,
                    )
                target_slot = self._slot(target)
                if target_slot is not None and not target_slot.try_reserve(
                    "consolidator"
                ):
                    if tr.enabled:
                        tr.event(
                            "plan.drop",
                            node=source.name,
                            strategy="consolidate",
                            pid=proc.pid,
                            reason="admission",
                        )
                    drained = False
                    break
                try:
                    report = yield LiveMigrationEngine(
                        source, target, proc, cfg.migration
                    ).start()
                finally:
                    if target_slot is not None:
                        target_slot.release("consolidator", start_calm_down=False)
                self._transfer_management(source, target, proc)
                if tr.enabled:
                    tr.event(
                        "plan.outcome",
                        node=source.name,
                        strategy="consolidate",
                        pid=proc.pid,
                        dest=target.name,
                        outcome="executed" if report.success else "aborted",
                        attempts=0 if report.success else 1,
                    )
                ft = report.freeze_time
                freeze_desc = f"{ft * 1e3:.1f} ms freeze" if ft is not None else "freeze n/a"
                self.events.append(
                    PowerEvent(
                        self.env.now,
                        "migrate",
                        source.name,
                        f"{proc.name} -> {target.name} ({freeze_desc})",
                    )
                )
            if drained and not self.resolve_processes(source):
                self._sleep_node(source)
        finally:
            if slot is not None and slot.reserved_by == "consolidator":
                slot.release("consolidator", start_calm_down=False)
        if source.name in self.sleeping:
            self._hold_sleeping_slot(source)

    def _pick_target(self, source: Host, proc: SimProcess) -> Optional[Host]:
        """Most-loaded awake peer that stays under the cap."""
        cfg = self.config
        added = 100.0 * proc.cpu_demand / max(1, source.kernel.cpu.cores)
        candidates = [
            h
            for h in self.awake_hosts()
            if h is not source and self._load(h) + added <= cfg.target_cap
        ]
        if not candidates:
            return None
        return max(candidates, key=self._load)

    def _slot(self, host: Host):
        cond = host.daemons.get("conductor")
        return cond.slot if cond is not None else None

    def _transfer_management(self, source: Host, target: Host, proc: SimProcess) -> None:
        src_cond = source.daemons.get("conductor")
        dst_cond = target.daemons.get("conductor")
        if src_cond is not None:
            src_cond.unmanage(proc)
        if dst_cond is not None:
            dst_cond.manage(proc)
