"""Load information records and the per-node peer database.

Each conductor maintains an approximation of the overall cluster load
from the latest heartbeats (Section IV): the peer database stores the
most recent :class:`LoadInfo` per node and computes the cluster-wide
average that the transfer/location/selection policies reason about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import IPAddr

__all__ = ["LoadInfo", "PeerDatabase"]


@dataclass(frozen=True)
class LoadInfo:
    """One heartbeat's worth of node state."""

    node_name: str
    local_ip: IPAddr
    cpu_percent: float
    nprocs: int
    timestamp: float

    def age(self, now: float) -> float:
        """Seconds since this heartbeat was taken (0 for a fresh one)."""
        return max(0.0, now - self.timestamp)


class PeerDatabase:
    """Latest-known load of every other node."""

    def __init__(self, stale_timeout: float = 5.0) -> None:
        if stale_timeout <= 0:
            raise ValueError("stale timeout must be positive")
        self.stale_timeout = stale_timeout
        self._peers: dict[IPAddr, LoadInfo] = {}
        #: ip -> timestamp of the heartbeat it was pruned with.  A pruned
        #: peer's *old* heartbeats may still be in flight; without the
        #: tombstone a late replay would resurrect the dead entry (and a
        #: re-announcing node could then look alternately alive/dead).
        self._pruned: dict[IPAddr, float] = {}
        #: Total peers ever dropped by :meth:`prune_stale` (monotonic;
        #: exported as the ``peers_stale_total`` metric).
        self.stale_total = 0

    def update(self, info: LoadInfo) -> None:
        """Record a heartbeat; ignores stale (older) reorderings.

        A peer pruned earlier is re-admitted only by a heartbeat *newer*
        than the one it was pruned with — a genuine re-announcement —
        which also clears its tombstone; late replays of its pre-prune
        heartbeats are discarded.
        """
        pruned_at = self._pruned.get(info.local_ip)
        if pruned_at is not None:
            if info.timestamp <= pruned_at:
                return
            del self._pruned[info.local_ip]
        current = self._peers.get(info.local_ip)
        if current is None or info.timestamp >= current.timestamp:
            self._peers[info.local_ip] = info

    def remove(self, ip: IPAddr) -> None:
        self._peers.pop(ip, None)
        self._pruned.pop(ip, None)

    def prune_stale(self, now: float) -> list[LoadInfo]:
        """Drop peers whose heartbeat lapsed; returns the departed."""
        gone = [
            info
            for info in self._peers.values()
            if now - info.timestamp > self.stale_timeout
        ]
        for info in gone:
            del self._peers[info.local_ip]
            self._pruned[info.local_ip] = info.timestamp
        self.stale_total += len(gone)
        return gone

    def peers(self) -> list[LoadInfo]:
        return sorted(self._peers.values(), key=lambda i: i.node_name)

    def partition_fresh(
        self, now: float, window: float
    ) -> tuple[list[LoadInfo], list[LoadInfo]]:
        """Split peers into (fresh, stale) by heartbeat age.

        The planner's staleness guard: peers whose last heartbeat is
        older than ``window`` are still *known* (they have not lapsed
        past ``stale_timeout`` and been pruned) but their load figures
        are too old to rank as migration candidates.
        """
        fresh: list[LoadInfo] = []
        stale: list[LoadInfo] = []
        for info in self.peers():
            (fresh if info.age(now) <= window else stale).append(info)
        return fresh, stale

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, ip: IPAddr) -> bool:
        return ip in self._peers

    def get(self, ip: IPAddr) -> LoadInfo | None:
        return self._peers.get(ip)

    def cluster_average(self, own_load: float) -> float:
        """Approximated overall cluster load including this node."""
        loads = [info.cpu_percent for info in self._peers.values()]
        loads.append(own_load)
        return sum(loads) / len(loads)
