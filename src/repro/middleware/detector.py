"""Heartbeat-timeout failure detection.

The conductor already prunes peers whose heartbeats lapse (with
tombstones against late replays, see :class:`~repro.middleware.loadinfo.
PeerDatabase`); the :class:`FailureDetector` adds the *judgement* layer
the recovery machinery needs: how long has a peer been silent, and how
sure are we that it is gone?

Classic three-state phi-accrual-lite semantics:

* ``alive`` — heard from within ``suspect_timeout``.
* ``suspect`` — silent past ``suspect_timeout``: stop *choosing* it as
  a migration destination, but in-flight work may still complete.
* ``dead`` — silent past ``dead_timeout``: sessions targeting it are
  hopeless; abort, roll back, retry elsewhere.

A peer that speaks again from any state snaps back to ``alive`` (and
is traced as a recovery).  All transitions emit ``recover.*`` trace
events so repro-trace timelines show detection latency next to the
faults that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Environment
from ..net import IPAddr

__all__ = ["ALIVE", "SUSPECT", "DEAD", "PeerHealth", "FailureDetector"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass
class PeerHealth:
    """Detector record for one peer."""

    ip: IPAddr
    name: str
    state: str
    #: Simulated time of the last message from this peer.
    last_heard: float
    #: When the peer entered its current state.
    since: float


class FailureDetector:
    """Per-conductor view of which peers are answering.

    Fed by :meth:`heard_from` on every inbound conductor message and
    swept by :meth:`check` from the heartbeat loop.  Pure bookkeeping —
    it never sends probes of its own, so arming it costs no wire time.
    """

    def __init__(
        self,
        env: Environment,
        *,
        suspect_timeout: float = 2.5,
        dead_timeout: float = 5.0,
        node: str = "",
    ) -> None:
        if suspect_timeout <= 0 or dead_timeout <= suspect_timeout:
            raise ValueError(
                "need 0 < suspect_timeout < dead_timeout "
                f"(got {suspect_timeout}, {dead_timeout})"
            )
        self.env = env
        self.suspect_timeout = suspect_timeout
        self.dead_timeout = dead_timeout
        self.node = node
        self._peers: dict[IPAddr, PeerHealth] = {}
        self.suspects_total = 0
        self.deaths_total = 0
        self.recoveries_total = 0

    # -- inputs ---------------------------------------------------------------
    def heard_from(self, ip: IPAddr, name: str = "") -> None:
        """A message from ``ip`` arrived: it is alive right now."""
        now = self.env.now
        rec = self._peers.get(ip)
        if rec is None:
            self._peers[ip] = PeerHealth(
                ip=ip, name=name, state=ALIVE, last_heard=now, since=now
            )
            return
        rec.last_heard = now
        if name:
            rec.name = name
        if rec.state != ALIVE:
            prior = rec.state
            rec.state = ALIVE
            rec.since = now
            self.recoveries_total += 1
            tr = self.env.tracer
            if tr.enabled:
                tr.event(
                    "recover.alive",
                    node=self.node,
                    peer=rec.name or str(ip),
                    was=prior,
                )

    def forget(self, ip: IPAddr) -> None:
        """Drop a peer entirely (graceful leave: silence is expected)."""
        self._peers.pop(ip, None)

    def check(self) -> list[PeerHealth]:
        """Sweep for silence; returns peers that changed state."""
        now = self.env.now
        changed = []
        tr = self.env.tracer
        for rec in self._peers.values():
            silent = now - rec.last_heard
            if rec.state == ALIVE and silent > self.suspect_timeout:
                rec.state = SUSPECT
                rec.since = now
                self.suspects_total += 1
                changed.append(rec)
                if tr.enabled:
                    tr.event(
                        "recover.suspect",
                        node=self.node,
                        peer=rec.name or str(rec.ip),
                        silent=silent,
                    )
            if rec.state == SUSPECT and silent > self.dead_timeout:
                rec.state = DEAD
                rec.since = now
                self.deaths_total += 1
                changed.append(rec)
                if tr.enabled:
                    tr.event(
                        "recover.dead",
                        node=self.node,
                        peer=rec.name or str(rec.ip),
                        silent=silent,
                    )
        return changed

    # -- queries --------------------------------------------------------------
    def health(self, ip: IPAddr) -> Optional[PeerHealth]:
        return self._peers.get(ip)

    def state(self, ip: IPAddr) -> str:
        """Detector state for ``ip``; an unknown peer counts as alive
        (we have no evidence against it)."""
        rec = self._peers.get(ip)
        return rec.state if rec is not None else ALIVE

    def is_suspect(self, ip: IPAddr) -> bool:
        return self.state(ip) == SUSPECT

    def is_dead(self, ip: IPAddr) -> bool:
        return self.state(ip) == DEAD

    def usable(self, ip: IPAddr) -> bool:
        """Should new work target this peer?  Only when alive."""
        return self.state(ip) == ALIVE

    def suspects(self) -> list[PeerHealth]:
        return [r for r in self._peers.values() if r.state == SUSPECT]

    def dead(self) -> list[PeerHealth]:
        return [r for r in self._peers.values() if r.state == DEAD]

    def __len__(self) -> int:
        return len(self._peers)
