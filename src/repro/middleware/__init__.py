"""Decentralized load-balancing middleware (Section IV).

Per-node conductor daemons discover each other, exchange periodic load
heartbeats, and perform sender-initiated process migrations, with a
two-phase-commit admission on the receiver and calm-down periods after
each migration.  Decisions flow through a pluggable strategy layer
(:mod:`.strategy`): ClusterModel → Strategy → MigrationPlan → Planner →
admission.  The default ``paper-threshold`` strategy is the paper's
transfer / location / selection / information policy loop.
"""

from .conductor import (
    CONDUCTOR_PORT,
    Conductor,
    ConductorConfig,
    install_conductor,
)
from .conductor import MigrationEvent
from .consolidation import ConsolidationConfig, Consolidator
from .detector import ALIVE, DEAD, FailureDetector, PeerHealth, SUSPECT
from .loadinfo import LoadInfo, PeerDatabase
from .monitor import LoadMonitor
from .policies import (
    InformationPolicy,
    LargestProcessSelectionPolicy,
    LeastLoadedLocationPolicy,
    LocationPolicy,
    PolicyConfig,
    RandomLocationPolicy,
    SelectionPolicy,
    TransferPolicy,
)
from .strategy import (
    STRATEGIES,
    BalanceToAverageStrategy,
    ClusterModel,
    CycleAwareStrategy,
    MigrationAction,
    MigrationPlan,
    NodeView,
    PaperThresholdStrategy,
    Planner,
    Strategy,
    make_strategy,
    register_strategy,
)
from .twophase import MigrationAdmission, MigrationSlot

__all__ = [
    "LoadInfo",
    "PeerDatabase",
    "LoadMonitor",
    "PolicyConfig",
    "TransferPolicy",
    "LocationPolicy",
    "LeastLoadedLocationPolicy",
    "RandomLocationPolicy",
    "SelectionPolicy",
    "LargestProcessSelectionPolicy",
    "InformationPolicy",
    "MigrationAdmission",
    "MigrationSlot",
    "Conductor",
    "ConductorConfig",
    "MigrationEvent",
    "CONDUCTOR_PORT",
    "install_conductor",
    "Consolidator",
    "ConsolidationConfig",
    "NodeView",
    "ClusterModel",
    "MigrationAction",
    "MigrationPlan",
    "Strategy",
    "PaperThresholdStrategy",
    "BalanceToAverageStrategy",
    "CycleAwareStrategy",
    "Planner",
    "STRATEGIES",
    "register_strategy",
    "make_strategy",
    "FailureDetector",
    "PeerHealth",
    "ALIVE",
    "SUSPECT",
    "DEAD",
]
