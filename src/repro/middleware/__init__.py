"""Decentralized load-balancing middleware (Section IV).

Per-node conductor daemons discover each other, exchange periodic load
heartbeats, and perform sender-initiated process migrations governed by
the transfer / location / selection / information policies, with a
two-phase-commit admission on the receiver and calm-down periods after
each migration.
"""

from .conductor import (
    CONDUCTOR_PORT,
    Conductor,
    ConductorConfig,
    install_conductor,
)
from .conductor import MigrationEvent
from .consolidation import ConsolidationConfig, Consolidator
from .detector import ALIVE, DEAD, FailureDetector, PeerHealth, SUSPECT
from .loadinfo import LoadInfo, PeerDatabase
from .monitor import LoadMonitor
from .policies import (
    InformationPolicy,
    LargestProcessSelectionPolicy,
    LeastLoadedLocationPolicy,
    LocationPolicy,
    PolicyConfig,
    RandomLocationPolicy,
    SelectionPolicy,
    TransferPolicy,
)
from .twophase import MigrationAdmission, MigrationSlot

__all__ = [
    "LoadInfo",
    "PeerDatabase",
    "LoadMonitor",
    "PolicyConfig",
    "TransferPolicy",
    "LocationPolicy",
    "LeastLoadedLocationPolicy",
    "RandomLocationPolicy",
    "SelectionPolicy",
    "LargestProcessSelectionPolicy",
    "InformationPolicy",
    "MigrationAdmission",
    "MigrationSlot",
    "Conductor",
    "ConductorConfig",
    "MigrationEvent",
    "CONDUCTOR_PORT",
    "install_conductor",
    "Consolidator",
    "ConsolidationConfig",
    "FailureDetector",
    "PeerHealth",
    "ALIVE",
    "SUSPECT",
    "DEAD",
]
