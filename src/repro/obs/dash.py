"""``repro-dash``: a terminal dashboard over exported run telemetry.

Renders, from the files a run leaves behind, the cluster view an
operator would want while watching a migration wave:

- **per-node panel** — the latest ``node.<ip>.*`` sampler values from a
  metrics CSV (the :func:`repro.analysis.export.series_to_csv` format),
  one row per node: run queue, CPU utilisation, established
  connections, TCP queue bytes, IP drops, capture-buffer occupancy,
  peer-database staleness;
- **per-session panel** — one row per migration session from a JSONL
  trace (strategy, route, rounds, downtime, bytes, outcome);
- **planner panel** — the decision plane, when the trace carries
  ``plan.*`` records: one row per (node, strategy) with plans emitted,
  actions and their fates (executed/retried/vetoed/aborted/deferred/
  dropped);
- **SLO panel** — optional declarative rules (``--slo "name < x"``)
  evaluated against the latest metric values.

Usage::

    repro-dash --metrics run.csv --trace run.jsonl
    repro-dash --metrics run.csv --slo "node.10.0.0.1.ip.drops == 0"
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

__all__ = [
    "main",
    "build_parser",
    "render_node_panel",
    "render_planner_panel",
    "render_scenario_panel",
    "latest_values",
    "split_node_metric",
]

#: (column header, ``node.<ip>.`` metric suffix, format) for the node panel.
_NODE_COLUMNS = [
    ("runq", "sched.runq", "{:.0f}"),
    ("cpu%", "sched.cpu_util", "{:.1f}"),
    ("procs", "sched.nprocs", "{:.0f}"),
    ("estab", "tcp.established", "{:.0f}"),
    ("sendq B", "tcp.send_q_bytes", "{:.0f}"),
    ("recvq B", "tcp.recv_q_bytes", "{:.0f}"),
    ("ooo B", "tcp.ooo_q_bytes", "{:.0f}"),
    ("drops", "ip.drops", "{:.0f}"),
    ("capture B", "netfilter.capture_queued", "{:.0f}"),
    ("peer stale s", "cond.peer_staleness_s", "{:.2f}"),
]


def latest_values(cols: dict[str, list[float]]) -> dict[str, float]:
    """The last sample of every series (empty series are dropped)."""
    return {name: vals[-1] for name, vals in cols.items() if vals}


def split_node_metric(name: str) -> Optional[tuple[str, str]]:
    """``node.192.168.0.1.sched.runq`` -> ``("192.168.0.1", "sched.runq")``.

    The IP itself is dotted, so the address is the run of leading
    all-digit components.  ``None`` for non-``node.*`` names.
    """
    if not name.startswith("node."):
        return None
    parts = name[len("node."):].split(".")
    i = 0
    while i < len(parts) and parts[i].isdigit():
        i += 1
    if i == 0 or i >= len(parts):
        return None
    return ".".join(parts[:i]), ".".join(parts[i:])


def render_node_panel(cols: dict[str, list[float]], at_time: Optional[float] = None) -> str:
    """One row per node from the ``node.<ip>.*`` series' latest samples."""
    from ..analysis.report import render_table

    latest = latest_values(cols)
    nodes: dict[str, dict[str, float]] = {}
    for name, value in latest.items():
        parsed = split_node_metric(name)
        if parsed is None:
            continue
        ip, metric = parsed
        nodes.setdefault(ip, {})[metric] = value
    if not nodes:
        return "(no node.<ip>.* series in metrics export)"
    rows = []
    for ip in sorted(nodes):
        row = [ip]
        for _, suffix, fmt in _NODE_COLUMNS:
            value = nodes[ip].get(suffix)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    title = "Nodes"
    if at_time is not None:
        title += f" (latest sample, t={at_time:.3f}s)"
    return render_table(
        ["node"] + [c[0] for c in _NODE_COLUMNS], rows, title=title
    )


def render_planner_panel(events) -> str:
    """Decision-plane rollup from the trace's ``plan.*`` records.

    One row per (node, strategy): plans emitted, actions planned, and a
    fate tally.  Empty string when the trace has no ``plan.*`` records
    (the default paper-threshold strategy keeps plan tracing off).
    """
    from ..analysis.report import render_table

    per: dict[tuple[str, str], dict[str, int]] = {}

    def agg(ev) -> dict[str, int]:
        key = (
            str(ev.fields.get("node", "?")),
            str(ev.fields.get("strategy", "?")),
        )
        return per.setdefault(
            key, {"plans": 0, "actions": 0, "deferred": 0, "dropped": 0}
        )

    for ev in events:
        if not ev.name.startswith("plan."):
            continue
        if ev.name == "plan.emitted":
            agg(ev)["plans"] += 1
        elif ev.name == "plan.action":
            agg(ev)["actions"] += 1
        elif ev.name == "plan.defer":
            agg(ev)["deferred"] += 1
        elif ev.name == "plan.drop":
            agg(ev)["dropped"] += 1
        elif ev.name == "plan.outcome":
            a = agg(ev)
            outcome = str(ev.fields.get("outcome", "?"))
            a[outcome] = a.get(outcome, 0) + 1
    if not per:
        return ""
    fate_cols = ["executed", "retried", "vetoed", "aborted", "deferred", "dropped"]
    rows = []
    for (node, strategy) in sorted(per):
        counts = per[(node, strategy)]
        rows.append(
            [node, strategy, counts["plans"], counts["actions"]]
            + [counts.get(f, 0) for f in fate_cols]
        )
    return render_table(
        ["node", "strategy", "plans", "actions"] + fate_cols,
        rows,
        title="Planner",
    )


def render_scenario_panel(cols: dict[str, list[float]], campaign: str = "") -> str:
    """Workload view from the ``scenario.*`` series a
    :class:`~repro.scenarios.driver.ScenarioDriver` exports: offered vs
    achieved population over the window, and one row per zone with its
    latest / peak client count.

    ``campaign`` selects the ``scenario.<campaign>.*`` namespace a
    campaign-tagged driver records; empty reads the bare ``scenario.*``
    series.  Empty string when the export carries no such series.
    """
    from ..analysis.report import render_kv, render_table
    from ..scenarios.driver import series_prefix

    prefix = series_prefix(campaign)
    offered = cols.get(f"{prefix}offered") or []
    achieved = cols.get(f"{prefix}achieved") or []
    zone_head, zone_tail = f"{prefix}zone.", ".clients"
    zones: dict[int, list[float]] = {}
    for name, vals in cols.items():
        if name.startswith(zone_head) and name.endswith(zone_tail) and vals:
            zone_id = name[len(zone_head): -len(zone_tail)]
            if zone_id.isdigit():
                zones[int(zone_id)] = vals
    if not offered and not zones:
        return ""

    panels = []
    if offered:
        summary = {
            "offered (latest)": offered[-1],
            "offered (peak)": max(offered),
            "offered (mean)": round(sum(offered) / len(offered), 1),
        }
        if achieved:
            summary["achieved (latest)"] = achieved[-1]
            gap = sum(o - a for o, a in zip(offered, achieved))
            total = sum(offered)
            summary["achieved/offered"] = (
                round(1.0 - gap / total, 4) if total > 0 else 1.0
            )
        title = "Scenario" + (f" [{campaign}]" if campaign else "")
        panels.append(render_kv(summary, title=title))
    if zones:
        rows = [
            [z, f"{vals[-1]:.0f}", f"{max(vals):.0f}", f"{min(vals):.0f}"]
            for z, vals in sorted(zones.items())
        ]
        panels.append(
            render_table(
                ["zone", "clients", "peak", "min"], rows, title="Zone population"
            )
        )
    return "\n\n".join(panels)


def _render_other_metrics(cols: dict[str, list[float]]) -> str:
    from ..analysis.report import render_kv

    other = {
        name: value
        for name, value in sorted(latest_values(cols).items())
        if not name.startswith(("node.", "scenario."))
    }
    if not other:
        return ""
    return render_kv(other, title="Other metrics (latest)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dash",
        description="Per-node / per-session dashboard from trace + metrics exports.",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="metrics CSV (series_to_csv format: time,<name>,...)",
    )
    parser.add_argument("--trace", type=Path, default=None, help="JSONL trace file")
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="RULE",
        help="SLO rule ('metric op threshold') checked against the latest "
        "metric values; repeatable",
    )
    parser.add_argument(
        "--session",
        default=None,
        help="limit the session panel to one migration session id",
    )
    parser.add_argument(
        "--campaign",
        default=None,
        help="read the scenario panel from the scenario.<campaign>.* series "
        "(a campaign-tagged run); default reads the bare scenario.* series",
    )
    parser.add_argument(
        "--sweep",
        type=Path,
        default=None,
        help="merged repro-sweep/1 document (SWEEP_<name>.json); renders the "
        "cross-run comparison table",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.metrics is None and args.trace is None and args.sweep is None:
        print("repro-dash: need --metrics, --trace and/or --sweep", file=sys.stderr)
        return 2
    panels: list[str] = []
    cols: dict[str, list[float]] = {}

    if args.sweep is not None:
        from ..sweep.merge import read_sweep, render_sweep_table

        if not args.sweep.exists():
            print(f"repro-dash: no such file: {args.sweep}", file=sys.stderr)
            return 2
        try:
            doc = read_sweep(args.sweep)
        except ValueError as exc:
            print(
                f"repro-dash: {args.sweep} is not a repro-sweep/1 document: {exc}",
                file=sys.stderr,
            )
            return 2
        panels.append(render_sweep_table(doc))

    if args.metrics is not None:
        from ..analysis.export import read_series_csv

        if not args.metrics.exists():
            print(f"repro-dash: no such file: {args.metrics}", file=sys.stderr)
            return 2
        try:
            times, cols = read_series_csv(args.metrics.read_text())
        except ValueError as exc:
            print(f"repro-dash: {args.metrics}: {exc}", file=sys.stderr)
            return 2
        panels.append(render_node_panel(cols, at_time=times[-1] if times else None))
        scenario = render_scenario_panel(cols, campaign=args.campaign or "")
        if scenario:
            panels.append(scenario)
        elif args.campaign is not None:
            print(
                f"repro-dash: no scenario.{args.campaign}.* series in "
                f"{args.metrics}",
                file=sys.stderr,
            )
            return 3
        other = _render_other_metrics(cols)
        if other:
            panels.append(other)

    if args.trace is not None:
        from .export import migration_slices, read_jsonl, render_trace_summary

        if not args.trace.exists():
            print(f"repro-dash: no such file: {args.trace}", file=sys.stderr)
            return 2
        try:
            events = read_jsonl(args.trace)
        except (ValueError, KeyError, TypeError) as exc:
            print(
                f"repro-dash: {args.trace} is not a JSONL trace: {exc}",
                file=sys.stderr,
            )
            return 2
        if args.session is not None:
            keep = {args.session}
            events = [
                ev
                for ev in events
                if ev.fields.get("session") in keep or ev.fields.get("session") is None
            ]
            if not any(s.session in keep for s in migration_slices(events)):
                print(
                    f"repro-dash: no such session {args.session!r} in {args.trace}",
                    file=sys.stderr,
                )
                return 3
        panels.append(render_trace_summary(events))
        planner = render_planner_panel(events)
        if planner:
            panels.append(planner)
        from .causal import render_critical_path

        critical = render_critical_path(events, session=args.session)
        if critical and not critical.startswith("(no migrations"):
            panels.append(critical)

    rc = 0
    if args.slo:
        from .slo import evaluate_slos

        try:
            report = evaluate_slos(args.slo, latest_values(cols))
        except ValueError as exc:
            print(f"repro-dash: {exc}", file=sys.stderr)
            return 2
        panels.append(report.render())
        if not report.passed:
            rc = 1

    print("\n\n".join(p for p in panels if p))
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
