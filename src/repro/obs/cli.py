"""``repro-trace``: render a JSONL migration trace as text.

Usage::

    repro-trace results/fig5b_n16_incremental-collective_rep0.jsonl
    repro-trace trace.jsonl --pid 1000 --timeline
    repro-trace trace.jsonl --session 'node1>node2#1000' --timeline
    repro-trace trace.jsonl --summary
    repro-trace trace.jsonl --faults          # all injected faults
    repro-trace trace.jsonl --faults crash    # one fault kind
    repro-trace trace.jsonl --plans           # decision-plane report
    repro-trace trace.jsonl --plans cycle-aware   # one strategy

With no mode flag both the summary table and the per-migration phase
timelines are printed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .export import (
    fault_kinds,
    migration_slices,
    plan_strategies,
    read_jsonl,
    render_fault_report,
    render_plan_report,
    render_timeline,
    render_trace_summary,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a JSONL migration trace (see docs/observability.md).",
    )
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument(
        "--pid", type=int, default=None, help="only this process's migrations"
    )
    parser.add_argument(
        "--session",
        default=None,
        help="only this migration session (id like 'node1>node2#1000')",
    )
    parser.add_argument(
        "--faults",
        nargs="?",
        const="all",
        default=None,
        metavar="KIND",
        help="also list injected faults and recovery decisions, "
        "optionally filtered to one fault kind (e.g. 'crash')",
    )
    parser.add_argument(
        "--plans",
        nargs="?",
        const="all",
        default=None,
        metavar="STRATEGY",
        help="also report the decision plane's plan.* records — emitted "
        "plans, action outcomes (executed/vetoed/retried/aborted) and "
        "per-strategy score distributions — optionally filtered to one "
        "strategy name (e.g. 'cycle-aware')",
    )
    parser.add_argument(
        "--timeline", action="store_true", help="print only the phase timelines"
    )
    parser.add_argument(
        "--summary", action="store_true", help="print only the summary table"
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=200,
        help="cap timeline rows per migration (default 200)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.trace.exists():
        print(f"repro-trace: no such file: {args.trace}", file=sys.stderr)
        return 2
    try:
        events = read_jsonl(args.trace)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"repro-trace: {args.trace} is not a JSONL trace: {exc}", file=sys.stderr)
        return 2
    if args.session is not None:
        known = [
            s.session for s in migration_slices(events) if s.session is not None
        ]
        if args.session not in known:
            print(
                f"repro-trace: no such session {args.session!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print(
                    "known sessions: " + ", ".join(known), file=sys.stderr
                )
            return 3
    if args.faults is not None and args.faults != "all":
        known = fault_kinds(events)
        if args.faults not in known:
            print(
                f"repro-trace: no such fault kind {args.faults!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print("known fault kinds: " + ", ".join(known), file=sys.stderr)
            return 3
    if args.plans is not None and args.plans != "all":
        known = plan_strategies(events)
        if args.plans not in known:
            print(
                f"repro-trace: no such strategy {args.plans!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print("known strategies: " + ", ".join(known), file=sys.stderr)
            return 3
    show_summary = args.summary or not args.timeline
    show_timeline = args.timeline or not args.summary
    if show_summary:
        print(render_trace_summary(events))
    if args.faults is not None:
        if show_summary:
            print()
        print(
            render_fault_report(
                events, kind=None if args.faults == "all" else args.faults
            )
        )
    if args.plans is not None:
        if show_summary or args.faults is not None:
            print()
        print(
            render_plan_report(
                events, strategy=None if args.plans == "all" else args.plans
            )
        )
    if (show_summary or args.faults is not None or args.plans is not None) and show_timeline:
        print()
    if show_timeline:
        print(
            render_timeline(
                events, pid=args.pid, max_rows=args.max_rows, session=args.session
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
