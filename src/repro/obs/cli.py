"""``repro-trace``: render a JSONL migration trace as text.

Usage::

    repro-trace results/fig5b_n16_incremental-collective_rep0.jsonl
    repro-trace trace.jsonl --pid 1000 --timeline
    repro-trace trace.jsonl --session 'node1>node2#1000' --timeline
    repro-trace trace.jsonl --summary
    repro-trace trace.jsonl --faults          # all injected faults
    repro-trace trace.jsonl --faults crash    # one fault kind
    repro-trace trace.jsonl --plans           # decision-plane report
    repro-trace trace.jsonl --plans cycle-aware   # one strategy
    repro-trace trace.jsonl --critical-path   # downtime attribution
    repro-trace trace.jsonl --perfetto out.json   # chrome://tracing export
    repro-trace diff old.jsonl new.jsonl      # root-cause a regression

With no mode flag both the summary table and the per-migration phase
timelines are printed.  A malformed trace exits 2 with the offending
line number; ``--skip-bad-lines`` analyses what survives of a truncated
trace instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .causal import render_critical_path
from .diff import render_trace_diff
from .export import (
    TraceParseError,
    fault_kinds,
    migration_slices,
    plan_strategies,
    read_jsonl,
    render_fault_report,
    render_plan_report,
    render_timeline,
    render_trace_summary,
)
from .perfetto import write_chrome_trace

__all__ = ["main", "build_parser", "build_diff_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a JSONL migration trace (see docs/observability.md).",
    )
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument(
        "--pid", type=int, default=None, help="only this process's migrations"
    )
    parser.add_argument(
        "--session",
        default=None,
        help="only this migration session (id like 'node1>node2#1000')",
    )
    parser.add_argument(
        "--faults",
        nargs="?",
        const="all",
        default=None,
        metavar="KIND",
        help="also list injected faults and recovery decisions, "
        "optionally filtered to one fault kind (e.g. 'crash')",
    )
    parser.add_argument(
        "--plans",
        nargs="?",
        const="all",
        default=None,
        metavar="STRATEGY",
        help="also report the decision plane's plan.* records — emitted "
        "plans, action outcomes (executed/vetoed/retried/aborted) and "
        "per-strategy score distributions — optionally filtered to one "
        "strategy name (e.g. 'cycle-aware')",
    )
    parser.add_argument(
        "--timeline", action="store_true", help="print only the phase timelines"
    )
    parser.add_argument(
        "--summary", action="store_true", help="print only the summary table"
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="print the downtime critical path, total-time phase "
        "attribution, and degradation contributors per migration",
    )
    parser.add_argument(
        "--perfetto",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="also write a Chrome trace-event JSON export loadable in "
        "chrome://tracing or ui.perfetto.dev",
    )
    parser.add_argument(
        "--skip-bad-lines",
        action="store_true",
        help="drop malformed trace lines instead of failing (for "
        "truncated traces)",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=200,
        help="cap timeline rows per migration (default 200)",
    )
    return parser


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace diff",
        description="Align two traces' migrations and rank per-phase "
        "movements to root-cause a regression.",
    )
    parser.add_argument("old", type=Path, help="baseline JSONL trace")
    parser.add_argument("new", type=Path, help="candidate JSONL trace")
    parser.add_argument(
        "--skip-bad-lines",
        action="store_true",
        help="drop malformed trace lines instead of failing",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=12,
        help="cap ranked quantities per migration (default 12)",
    )
    return parser


def _load(path: Path, skip_bad_lines: bool):
    """Read a trace or exit-code it: (events, None) or (None, code)."""
    if not path.exists():
        print(f"repro-trace: no such file: {path}", file=sys.stderr)
        return None, 2
    try:
        return read_jsonl(path, skip_bad_lines=skip_bad_lines), None
    except TraceParseError as exc:
        print(f"repro-trace: {exc} (use --skip-bad-lines to drop)", file=sys.stderr)
        return None, 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"repro-trace: {path} is not a JSONL trace: {exc}", file=sys.stderr)
        return None, 2


def _main_diff(argv: list[str]) -> int:
    args = build_diff_parser().parse_args(argv)
    old_events, code = _load(args.old, args.skip_bad_lines)
    if code is not None:
        return code
    new_events, code = _load(args.new, args.skip_bad_lines)
    if code is not None:
        return code
    print(render_trace_diff(old_events, new_events, max_rows=args.max_rows))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `diff` rides as a subcommand ahead of the (positional-trace)
    # single-file parser.
    if argv and argv[0] == "diff":
        return _main_diff(argv[1:])
    args = build_parser().parse_args(argv)
    events, code = _load(args.trace, args.skip_bad_lines)
    if code is not None:
        return code
    if args.session is not None:
        known = [
            s.session for s in migration_slices(events) if s.session is not None
        ]
        if args.session not in known:
            print(
                f"repro-trace: no such session {args.session!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print(
                    "known sessions: " + ", ".join(known), file=sys.stderr
                )
            return 3
    if args.faults is not None and args.faults != "all":
        known = fault_kinds(events)
        if args.faults not in known:
            print(
                f"repro-trace: no such fault kind {args.faults!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print("known fault kinds: " + ", ".join(known), file=sys.stderr)
            return 3
    if args.plans is not None and args.plans != "all":
        known = plan_strategies(events)
        if args.plans not in known:
            print(
                f"repro-trace: no such strategy {args.plans!r} in {args.trace}",
                file=sys.stderr,
            )
            if known:
                print("known strategies: " + ", ".join(known), file=sys.stderr)
            return 3
    if args.perfetto is not None:
        out = write_chrome_trace(args.perfetto, events)
        print(f"wrote {out}", file=sys.stderr)
    if args.critical_path:
        print(render_critical_path(events, session=args.session, pid=args.pid))
        return 0
    show_summary = args.summary or not args.timeline
    show_timeline = args.timeline or not args.summary
    if show_summary:
        print(render_trace_summary(events))
    if args.faults is not None:
        if show_summary:
            print()
        print(
            render_fault_report(
                events, kind=None if args.faults == "all" else args.faults
            )
        )
    if args.plans is not None:
        if show_summary or args.faults is not None:
            print()
        print(
            render_plan_report(
                events, strategy=None if args.plans == "all" else args.plans
            )
        )
    if (show_summary or args.faults is not None or args.plans is not None) and show_timeline:
        print()
    if show_timeline:
        print(
            render_timeline(
                events, pid=args.pid, max_rows=args.max_rows, session=args.session
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
