"""Trace-diff: explain *why* two runs differ, not just that they do.

Two entry points:

- :func:`diff_traces` / :func:`render_trace_diff` align two traces'
  migrations (by session id when both sides have one, by order
  otherwise) and compare per-phase wall-clock and byte totals, sorted
  by absolute delta — the phase at the top of the table is the root
  cause of the regression;
- :func:`bench_root_cause_table` does the analogous alignment for two
  ``repro-bench/1`` documents, ranking every metric and histogram-
  percentile movement so a failed ``repro-bench compare`` gate prints
  *which* measured quantity moved the most, not just the gate verdict.

Both are pure functions over already-parsed inputs; the CLI wiring
lives in :mod:`repro.obs.cli` (``repro-trace diff A B``) and
:mod:`repro.obs.bench` (``repro-bench compare``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .causal import downtime_critical_path
from .export import MigrationSlice, migration_slices, phase_byte_sums
from .tracer import TraceEvent

__all__ = [
    "MetricDelta",
    "SessionDiff",
    "diff_traces",
    "render_trace_diff",
    "bench_root_cause_table",
]


@dataclass
class MetricDelta:
    """One compared quantity: old value, new value, signed delta."""

    name: str
    old: Optional[float]
    new: Optional[float]
    unit: str = ""

    @property
    def delta(self) -> float:
        if self.old is None or self.new is None:
            return 0.0
        return self.new - self.old

    @property
    def change_pct(self) -> Optional[float]:
        if self.old is None or self.new is None or self.old == 0:
            return None
        return 100.0 * (self.new - self.old) / abs(self.old)


@dataclass
class SessionDiff:
    """One aligned migration pair (or an unmatched singleton)."""

    session: str
    #: ``"matched"`` / ``"only_old"`` / ``"only_new"``.
    status: str
    deltas: list[MetricDelta] = field(default_factory=list)

    def ranked(self) -> list[MetricDelta]:
        """Deltas by descending absolute magnitude (the root-cause
        ordering); zero-delta rows are dropped."""
        return sorted(
            (d for d in self.deltas if d.delta != 0.0 or d.old is None or d.new is None),
            key=lambda d: -abs(d.delta),
        )


def _span_seconds(sl: MigrationSlice, name: str) -> float:
    """Total finished-span seconds of ``name`` within the slice."""
    return sum(
        s.end - s.start for s in sl.spans(name) if s.end is not None
    )


def _slice_metrics(sl: MigrationSlice) -> dict[str, tuple[float, str]]:
    """The compared quantities of one migration, ``name -> (value, unit)``."""
    out: dict[str, tuple[float, str]] = {}
    if sl.terminal is not None:
        out["total_time"] = (sl.terminal.time - sl.start.time, "s")
    down = downtime_critical_path(sl)
    if down is not None:
        out["downtime"] = (down.total, "s")
        for label, secs, _pct in down.attribution():
            out[f"downtime.{label}"] = (secs, "s")
    rounds = [s for s in sl.spans("mig.precopy.round") if s.end is not None]
    out["precopy.rounds"] = (float(len(rounds)), "")
    if rounds:
        out["precopy.seconds"] = (sum(s.end - s.start for s in rounds), "s")
    for name, key in (
        ("mig.freeze.barrier", "freeze.barrier"),
        ("mig.freeze.transfer", "freeze.transfer"),
        ("migd.restore", "restore"),
    ):
        secs = _span_seconds(sl, name)
        if secs:
            out[key] = (secs, "s")
    for key, nbytes in phase_byte_sums(sl).items():
        if nbytes:
            out[f"bytes.{key}"] = (float(nbytes), "B")
    faults = sum(1 for e in sl.events if e.name == "pagefaultd.fault")
    if faults:
        out["postcopy.faults"] = (float(faults), "")
    for e in sl.events:
        if e.name == "migd.postcopy.done" and "fault_wait" in e.fields:
            out["postcopy.fault_wait"] = (
                out.get("postcopy.fault_wait", (0.0, "s"))[0]
                + float(e.fields["fault_wait"]),
                "s",
            )
    return out


def _align(
    old: list[MigrationSlice], new: list[MigrationSlice]
) -> list[tuple[str, Optional[MigrationSlice], Optional[MigrationSlice]]]:
    """Pair slices by session id where both sides have one; leftovers
    (and id-less slices) pair by order of appearance."""
    old_by_id = {s.session: s for s in old if s.session is not None}
    new_by_id = {s.session: s for s in new if s.session is not None}
    pairs: list[tuple[str, Optional[MigrationSlice], Optional[MigrationSlice]]] = []
    claimed_new: set[int] = set()
    leftovers_old: list[MigrationSlice] = []
    for sl in old:
        mate = new_by_id.get(sl.session) if sl.session is not None else None
        if mate is not None:
            pairs.append((sl.session, sl, mate))
            claimed_new.add(id(mate))
        else:
            leftovers_old.append(sl)
    leftovers_new = [
        sl
        for sl in new
        if id(sl) not in claimed_new
        and (sl.session is None or sl.session not in old_by_id)
    ]
    for i in range(max(len(leftovers_old), len(leftovers_new))):
        a = leftovers_old[i] if i < len(leftovers_old) else None
        b = leftovers_new[i] if i < len(leftovers_new) else None
        ident = (
            (a.session if a is not None else None)
            or (b.session if b is not None else None)
            or f"#{i + 1}"
        )
        pairs.append((ident, a, b))
    return pairs


def diff_traces(
    old_events: list[TraceEvent], new_events: list[TraceEvent]
) -> list[SessionDiff]:
    """Align and compare every migration across two traces."""
    out: list[SessionDiff] = []
    for ident, a, b in _align(
        migration_slices(old_events), migration_slices(new_events)
    ):
        if a is None:
            out.append(SessionDiff(session=ident, status="only_new"))
            continue
        if b is None:
            out.append(SessionDiff(session=ident, status="only_old"))
            continue
        old_m = _slice_metrics(a)
        new_m = _slice_metrics(b)
        deltas = []
        for name in sorted(set(old_m) | set(new_m)):
            ov, ounit = old_m.get(name, (None, ""))
            nv, nunit = new_m.get(name, (None, ""))
            deltas.append(
                MetricDelta(name=name, old=ov, new=nv, unit=ounit or nunit)
            )
        out.append(SessionDiff(session=ident, status="matched", deltas=deltas))
    return out


def _fmt_val(v: Optional[float], unit: str) -> str:
    if v is None:
        return "—"
    if unit == "s":
        return f"{v * 1e3:.3f} ms"
    if unit == "B":
        return f"{int(v)} B"
    return f"{v:g}"


def render_trace_diff(
    old_events: list[TraceEvent],
    new_events: list[TraceEvent],
    max_rows: int = 12,
) -> str:
    """The ``repro-trace diff`` report: per aligned migration, the
    compared quantities ranked by absolute movement."""
    from ..analysis.report import render_table

    diffs = diff_traces(old_events, new_events)
    if not diffs:
        return "(no migrations in either trace)"
    blocks: list[str] = []
    for d in diffs:
        if d.status == "only_old":
            blocks.append(f"session {d.session}: only in OLD trace")
            continue
        if d.status == "only_new":
            blocks.append(f"session {d.session}: only in NEW trace")
            continue
        ranked = d.ranked()
        if not ranked:
            blocks.append(f"session {d.session}: identical")
            continue
        rows = []
        for m in ranked[:max_rows]:
            pct = m.change_pct
            rows.append(
                [
                    m.name,
                    _fmt_val(m.old, m.unit),
                    _fmt_val(m.new, m.unit),
                    _fmt_val(m.delta, m.unit) if m.old is not None and m.new is not None else "—",
                    f"{pct:+.1f}%" if pct is not None else "—",
                ]
            )
        dropped = len(ranked) - len(rows)
        title = f"trace diff — session {d.session}"
        if dropped > 0:
            title += f" (top {max_rows} of {len(ranked)} moved quantities)"
        blocks.append(
            render_table(["quantity", "old", "new", "delta", "change"], rows, title=title)
        )
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Bench-document root cause
# ---------------------------------------------------------------------------
def bench_root_cause_table(
    old_doc: dict,
    new_doc: dict,
    results: Optional[list[dict]] = None,
    max_rows: int = 10,
) -> str:
    """Rank every metric and histogram-percentile movement between two
    ``repro-bench/1`` documents, largest relative change first.

    ``results`` (the :func:`~repro.obs.bench.compare_benches` output, if
    available) marks gate-regressed metrics with ``*`` so the table ties
    back to the verdict that failed the run.
    """
    from ..analysis.report import render_table

    flagged = {
        r["metric"] for r in (results or []) if r.get("status") == "regressed"
    }
    rows: list[tuple[float, list[str]]] = []

    def consider(name: str, old_v, new_v, unit: str = "") -> None:
        try:
            ov = float(old_v)
            nv = float(new_v)
        except (TypeError, ValueError):
            return
        if ov == nv:
            return
        pct = 100.0 * (nv - ov) / abs(ov) if ov != 0 else float("inf")
        mark = "*" if name in flagged else ""
        rows.append(
            (
                abs(pct),
                [
                    name + mark,
                    f"{ov:g}{' ' + unit if unit else ''}",
                    f"{nv:g}{' ' + unit if unit else ''}",
                    f"{pct:+.1f}%" if pct != float("inf") else "new",
                ],
            )
        )

    old_metrics = old_doc.get("metrics", {})
    new_metrics = new_doc.get("metrics", {})
    for name in sorted(set(old_metrics) & set(new_metrics)):
        consider(
            name,
            old_metrics[name].get("value"),
            new_metrics[name].get("value"),
            str(old_metrics[name].get("unit", "")),
        )
    old_h = old_doc.get("histograms", {})
    new_h = new_doc.get("histograms", {})
    for hname in sorted(set(old_h) & set(new_h)):
        for stat in ("count", "mean", "p50", "p95", "p99", "max"):
            if stat in old_h[hname] and stat in new_h[hname]:
                consider(f"{hname}.{stat}", old_h[hname][stat], new_h[hname][stat])

    if not rows:
        return "(no overlapping quantities moved)"
    rows.sort(key=lambda r: -r[0])
    table_rows = [r[1] for r in rows[:max_rows]]
    title = "root cause — largest movements"
    if flagged:
        title += " (* = failed the gate)"
    if len(rows) > max_rows:
        title += f" [top {max_rows} of {len(rows)}]"
    return render_table(["quantity", "old", "new", "change"], table_rows, title=title)
