"""Declarative SLO assertions over a finished run (``repro.obs.slo``).

The paper's claims are all of the form "*quantity stays under bound*":
freeze time below tens of milliseconds beyond 1000 connections, zero
packets lost during migration, client update cadence unbroken.  An
:class:`SLORule` states one such bound declaratively
(``"freeze_time_p99 < 3.0"``); :func:`evaluate_slos` checks a rule set
against the flat metric values of a finished run — a registry snapshot,
a ``BENCH_*.json`` metric block, or any name->number mapping — and
returns a per-rule verdict **with evidence** (the observed value), so a
failing gate says what was measured, not just that it failed.

Rule syntax (one rule per string)::

    <metric> <op> <threshold>

where ``<metric>`` is a metric name (dots allowed, e.g.
``mig.freeze_time.p99``), ``<op>`` is one of ``< <= > >= == !=`` and
``<threshold>`` is a float.  A rule whose metric is absent from the
values *fails* with reason ``metric not found`` — a gate must never
pass because instrumentation silently vanished.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

__all__ = ["SLORule", "SLOCheck", "SLOReport", "parse_rule", "evaluate_slos"]

#: Longest operators first so ``<=`` never tokenizes as ``<``.
_OPS = ("<=", ">=", "==", "!=", "<", ">")

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z_][\w.\-]*)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<threshold>[-+0-9.eE]+)\s*$"
)


@dataclass(frozen=True)
class SLORule:
    """One declarative bound on one metric."""

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r}")

    def check(self, value: float) -> bool:
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "==":
            return value == self.threshold
        return value != self.threshold

    def __str__(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"


def parse_rule(text: str) -> SLORule:
    """Parse ``"freeze_time_p99 < 3.0"`` into an :class:`SLORule`."""
    m = _RULE_RE.match(text)
    if m is None:
        raise ValueError(
            f"malformed SLO rule {text!r} (expected '<metric> <op> <threshold>')"
        )
    try:
        threshold = float(m.group("threshold"))
    except ValueError:
        raise ValueError(f"bad SLO threshold in {text!r}") from None
    return SLORule(m.group("metric"), m.group("op"), threshold)


@dataclass(frozen=True)
class SLOCheck:
    """One evaluated rule: verdict plus the evidence behind it."""

    rule: SLORule
    #: Observed value, or ``None`` when the metric was absent.
    value: Optional[float]
    passed: bool
    reason: str

    def to_dict(self) -> dict:
        return {
            "rule": str(self.rule),
            "value": self.value,
            "passed": self.passed,
            "reason": self.reason,
        }


@dataclass
class SLOReport:
    """All checks of one evaluation."""

    checks: list[SLOCheck]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[SLOCheck]:
        return [c for c in self.checks if not c.passed]

    def to_dict(self) -> dict:
        return {"passed": self.passed, "checks": [c.to_dict() for c in self.checks]}

    def render(self) -> str:
        from ..analysis.report import render_table

        rows = [
            [
                "PASS" if c.passed else "FAIL",
                str(c.rule),
                "-" if c.value is None else f"{c.value:.6g}",
                c.reason,
            ]
            for c in self.checks
        ]
        verdict = "all SLOs met" if self.passed else f"{len(self.failures)} SLO(s) violated"
        return render_table(
            ["verdict", "rule", "observed", "evidence"],
            rows,
            title=f"SLO report: {verdict}",
        )


RuleLike = Union[SLORule, str]


def evaluate_slos(
    rules: Iterable[RuleLike], values: Mapping[str, float]
) -> SLOReport:
    """Evaluate each rule against ``values`` (any name->number mapping,
    e.g. ``registry.snapshot()``)."""
    checks: list[SLOCheck] = []
    for rule in rules:
        if isinstance(rule, str):
            rule = parse_rule(rule)
        if rule.metric not in values:
            checks.append(
                SLOCheck(rule, None, False, "metric not found in run output")
            )
            continue
        value = float(values[rule.metric])
        ok = rule.check(value)
        reason = f"observed {value:.6g} {'satisfies' if ok else 'violates'} {rule.op} {rule.threshold:g}"
        checks.append(SLOCheck(rule, value, ok, reason))
    return SLOReport(checks)
