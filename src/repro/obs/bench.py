"""Benchmark-trajectory recorder and the ``repro-bench`` command.

Benchmarks under ``benchmarks/bench_*.py`` double as pytest-benchmark
suites *and* as recordable experiments: a bench module that exports a
``bench_result(quick: bool) -> dict`` hook can be executed by
``repro-bench run``, which wraps the returned measurements in a
versioned document and writes ``BENCH_<name>.json``::

    {
      "schema": "repro-bench/1",
      "name": "fig5b_freeze_time",
      "created_rev": "4073809…",        # git rev at record time (or null)
      "quick": true,
      "params": {...},                  # whatever the bench ran with
      "metrics": {
        "freeze_time_p99": {"value": 1.9e-3, "unit": "s",
                            "direction": "lower"},
        ...
      },
      "histograms": {"freeze_time": {"count": …, "p50": …, …}},
      "slos": {"passed": true, "checks": [...]}
    }

``direction`` states which way is *better* (``lower`` | ``higher`` |
``none``), which is what makes ``repro-bench compare`` meaningful: a
regression is a move in the *worse* direction by more than the
threshold percentage, improvements never fail the gate, and
``direction: none`` metrics are checked for drift in either direction.

The simulation is deterministic (seeded), so recorded baselines are
stable enough to commit and diff in CI.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Iterable, Optional

__all__ = [
    "BENCH_SCHEMA",
    "DIRECTIONS",
    "git_rev",
    "make_bench",
    "validate_bench",
    "write_bench",
    "read_bench",
    "compare_benches",
    "discover_benches",
    "run_bench_file",
    "profile_bench_file",
    "main",
]

BENCH_SCHEMA = "repro-bench/1"
DIRECTIONS = ("lower", "higher", "none")


# -- document construction / validation -------------------------------------
def git_rev(cwd: Optional[str] = None) -> Optional[str]:
    """Current git revision, or ``None`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def make_bench(
    name: str,
    *,
    quick: bool,
    params: Optional[dict] = None,
    metrics: Optional[dict] = None,
    histograms: Optional[dict] = None,
    slos: Optional[dict] = None,
    rev: Optional[str] = None,
) -> dict:
    """Assemble a schema-valid bench document from a hook's pieces."""
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_rev": rev if rev is not None else git_rev(),
        "quick": bool(quick),
        "params": dict(params or {}),
        "metrics": dict(metrics or {}),
        "histograms": dict(histograms or {}),
        "slos": dict(slos) if slos is not None else None,
    }
    validate_bench(doc)
    return doc


def validate_bench(doc: Any) -> dict:
    """Check a bench document against the ``repro-bench/1`` schema.

    Returns the document; raises ``ValueError`` naming the first
    offending field otherwise.
    """

    def fail(msg: str) -> None:
        raise ValueError(f"invalid bench document: {msg}")

    if not isinstance(doc, dict):
        fail(f"expected an object, got {type(doc).__name__}")
    if doc.get("schema") != BENCH_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        fail("name must be a non-empty string")
    if not isinstance(doc.get("quick"), bool):
        fail("quick must be a boolean")
    rev = doc.get("created_rev")
    if rev is not None and not isinstance(rev, str):
        fail("created_rev must be a string or null")
    if not isinstance(doc.get("params"), dict):
        fail("params must be an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics must be an object")
    for mname, m in metrics.items():
        if not isinstance(m, dict):
            fail(f"metric {mname!r} must be an object")
        if not isinstance(m.get("value"), (int, float)) or isinstance(m.get("value"), bool):
            fail(f"metric {mname!r} value must be a number")
        if not isinstance(m.get("unit"), str):
            fail(f"metric {mname!r} unit must be a string")
        if m.get("direction") not in DIRECTIONS:
            fail(
                f"metric {mname!r} direction must be one of {DIRECTIONS}, "
                f"got {m.get('direction')!r}"
            )
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail("histograms must be an object")
    for hname, h in hists.items():
        if not isinstance(h, dict) or not isinstance(h.get("count"), int):
            fail(f"histogram {hname!r} must be a summary object with a count")
    slos = doc.get("slos")
    if slos is not None:
        if not isinstance(slos, dict) or not isinstance(slos.get("passed"), bool):
            fail("slos must be null or an object with a boolean 'passed'")
        if not isinstance(slos.get("checks"), list):
            fail("slos.checks must be a list")
    return doc


# -- persistence -------------------------------------------------------------
def bench_path(directory: Path, name: str) -> Path:
    return Path(directory) / f"BENCH_{name}.json"


def write_bench(directory: Path, doc: dict) -> Path:
    """Write ``BENCH_<name>.json`` (validated) into ``directory``."""
    validate_bench(doc)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = bench_path(directory, doc["name"])
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read_bench(path: Path) -> dict:
    """Load and validate a ``BENCH_*.json`` file."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    try:
        return validate_bench(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


# -- comparison ---------------------------------------------------------------
def compare_benches(old: dict, new: dict, threshold_pct: float = 10.0) -> list[dict]:
    """Direction-aware regression check of ``new`` against baseline ``old``.

    Returns one entry per metric present in the baseline::

        {"metric", "old", "new", "change_pct", "direction",
         "status": "ok" | "improved" | "regressed" | "missing"}

    A metric regressed when it moved in its *worse* direction by more
    than ``threshold_pct`` percent (for ``direction: none``, any drift
    beyond the threshold regresses).  Metrics that vanished from the new
    run are reported as ``missing`` — a gate should treat that as a
    failure, not a silent pass.
    """
    validate_bench(old)
    validate_bench(new)
    results: list[dict] = []
    for mname, om in old["metrics"].items():
        nm = new["metrics"].get(mname)
        entry = {
            "metric": mname,
            "old": om["value"],
            "new": None if nm is None else nm["value"],
            "direction": om["direction"],
            "change_pct": None,
            "status": "missing",
        }
        if nm is not None:
            ov, nv = float(om["value"]), float(nm["value"])
            if ov == 0.0:
                change = 0.0 if nv == 0.0 else float("inf")
            else:
                change = 100.0 * (nv - ov) / abs(ov)
            entry["change_pct"] = change
            worse = {
                "lower": change > threshold_pct,
                "higher": change < -threshold_pct,
                "none": abs(change) > threshold_pct,
            }[om["direction"]]
            better = {
                "lower": change < 0,
                "higher": change > 0,
                "none": False,
            }[om["direction"]]
            entry["status"] = (
                "regressed" if worse else ("improved" if better else "ok")
            )
        results.append(entry)
    return results


def render_comparison(results: Iterable[dict], threshold_pct: float) -> str:
    from ..analysis.report import render_table

    rows = []
    for r in results:
        change = "-" if r["change_pct"] is None else f"{r['change_pct']:+.1f}%"
        new = "-" if r["new"] is None else f"{r['new']:.6g}"
        rows.append([r["status"], r["metric"], f"{r['old']:.6g}", new, change, r["direction"]])
    return render_table(
        ["status", "metric", "baseline", "current", "change", "better"],
        rows,
        title=f"bench comparison (regression threshold {threshold_pct:g}%)",
    )


# -- discovery / execution -----------------------------------------------------
def discover_benches(bench_dir: Path) -> list[Path]:
    """All ``bench_*.py`` files under ``bench_dir``, sorted by name."""
    return sorted(Path(bench_dir).glob("bench_*.py"))


def _bench_name(path: Path) -> str:
    return path.stem[len("bench_"):]


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"repro_bench_{path.stem}", path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib misuse
        raise ImportError(f"cannot load {path}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_bench_file(path: Path, quick: bool) -> Optional[dict]:
    """Execute one bench module's ``bench_result`` hook.

    Returns the validated bench document, or ``None`` when the module
    does not export the hook (pytest-only benches are skipped, not
    errors).
    """
    mod = _load_module(Path(path))
    hook = getattr(mod, "bench_result", None)
    if hook is None:
        return None
    result = hook(quick=quick)
    if "schema" not in result:
        # Allow hooks to return just the payload pieces.
        result = make_bench(
            result.pop("name", _bench_name(Path(path))),
            quick=quick,
            **result,
        )
    return validate_bench(result)


def profile_bench_file(
    path: Path, quick: bool, top: int = 25
) -> tuple[Optional[dict], Optional[str]]:
    """Run one bench hook under :mod:`cProfile`.

    Returns ``(doc, hotspot_text)`` where ``hotspot_text`` holds the
    top-``top`` functions by cumulative and by internal time — the
    per-bench hotspot tables written next to ``BENCH_<name>.json`` as
    ``PROFILE_<name>.txt``.  ``(None, None)`` when the module has no
    ``bench_result`` hook.  Profiling slows the run down, so profiled
    numbers are for *finding* hotspots, never for the regression gate —
    record the gated BENCH json from an unprofiled run.
    """
    import cProfile
    import io
    import pstats

    path = Path(path)
    mod = _load_module(path)
    hook = getattr(mod, "bench_result", None)
    if hook is None:
        return None, None
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = hook(quick=quick)
    finally:
        profiler.disable()
    if "schema" not in result:
        result = make_bench(
            result.pop("name", _bench_name(path)),
            quick=quick,
            **result,
        )
    doc = validate_bench(result)
    buf = io.StringIO()
    buf.write(
        f"# hotspots: {doc['name']} (quick={quick}, rev={doc.get('created_rev')})\n"
        f"# top {top} by cumulative time, then top {top} by internal time\n\n"
    )
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return doc, buf.getvalue()


def _select(paths: list[Path], names: list[str]) -> list[Path]:
    """Prefix-match requested names against discovered bench files."""
    if not names:
        return paths
    chosen: list[Path] = []
    for want in names:
        matches = [p for p in paths if _bench_name(p).startswith(want) or p.stem.startswith(want)]
        if not matches:
            known = ", ".join(_bench_name(p) for p in paths)
            raise SystemExit(f"repro-bench: no bench matches {want!r} (known: {known})")
        for m in matches:
            if m not in chosen:
                chosen.append(m)
    return chosen


# -- CLI ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    quick = args.quick or os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    paths = _select(discover_benches(Path(args.bench_dir)), args.names)
    out_dir = Path(args.out)
    wrote = 0
    failed_slos: list[str] = []
    for path in paths:
        if args.profile:
            doc, hotspots = profile_bench_file(path, quick=quick, top=args.profile_top)
        else:
            doc, hotspots = run_bench_file(path, quick=quick), None
        if doc is None:
            print(f"skip {path.name}: no bench_result hook")
            continue
        written = write_bench(out_dir, doc)
        if hotspots is not None:
            profile_path = out_dir / f"PROFILE_{doc['name']}.txt"
            profile_path.write_text(hotspots)
            print(f"wrote {profile_path}")
        wrote += 1
        slos = doc.get("slos")
        verdict = ""
        if slos is not None:
            verdict = " [SLO pass]" if slos["passed"] else " [SLO FAIL]"
            if not slos["passed"]:
                failed_slos.append(doc["name"])
                for check in slos["checks"]:
                    if not check["passed"]:
                        print(f"  SLO FAIL {doc['name']}: {check['rule']} — {check['reason']}")
        print(f"wrote {written}{verdict}")
    if wrote == 0:
        print("repro-bench: no recordable benches ran", file=sys.stderr)
        return 1
    if failed_slos and not args.no_slo_gate:
        print(f"repro-bench: SLO violations in: {', '.join(failed_slos)}", file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    # A gate that cannot find (or parse) its baseline must say so and
    # exit with the usage code, not die in a traceback.
    try:
        old = read_bench(Path(args.baseline))
    except (OSError, ValueError) as exc:
        print(f"repro-bench: missing baseline: {args.baseline} ({exc})", file=sys.stderr)
        return 2
    try:
        new = read_bench(Path(args.current))
    except (OSError, ValueError) as exc:
        print(f"repro-bench: missing current: {args.current} ({exc})", file=sys.stderr)
        return 2
    if old["name"] != new["name"]:
        print(
            f"repro-bench: comparing different benches "
            f"({old['name']!r} vs {new['name']!r})",
            file=sys.stderr,
        )
        return 2
    results = compare_benches(old, new, threshold_pct=args.threshold)
    print(render_comparison(results, args.threshold))
    bad = [r for r in results if r["status"] in ("regressed", "missing")]
    if bad:
        # Root-cause the failure: rank *every* movement (metrics and
        # histogram percentiles), not just the gated ones, so the
        # largest mover is visible even when it wasn't gated itself.
        from .diff import bench_root_cause_table

        print()
        print(bench_root_cause_table(old, new, results))
        for r in bad:
            print(
                f"repro-bench: {r['status']}: {r['metric']}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for path in discover_benches(Path(args.bench_dir)):
        mod = _load_module(path)
        has_hook = "recordable" if hasattr(mod, "bench_result") else "pytest-only"
        print(f"{_bench_name(path):<28} {has_hook:<12} {path}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run recordable benchmarks and compare BENCH_*.json trajectories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute bench_result hooks, write BENCH_<name>.json")
    p_run.add_argument("names", nargs="*", help="bench name prefixes (default: all)")
    p_run.add_argument("--bench-dir", default="benchmarks", help="directory with bench_*.py")
    p_run.add_argument("--out", default="bench-results", help="output directory")
    p_run.add_argument("--quick", action="store_true", help="force quick mode (REPRO_BENCH_QUICK)")
    p_run.add_argument(
        "--no-slo-gate",
        action="store_true",
        help="record SLO verdicts but do not fail the exit code on violations",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="run each hook under cProfile and write PROFILE_<name>.txt hotspot tables",
    )
    p_run.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="rows per hotspot table with --profile (default: 25)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="diff a current BENCH json against a baseline")
    p_cmp.add_argument("baseline", help="baseline BENCH_<name>.json")
    p_cmp.add_argument("current", help="current BENCH_<name>.json")
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_list = sub.add_parser("list", help="list discovered benches and whether they are recordable")
    p_list.add_argument("--bench-dir", default="benchmarks")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
