"""``repro.obs`` — tracing and metrics for the simulated cluster.

- :mod:`tracer` — typed span/event recording with simulated timestamps,
  zero-overhead when disabled (the default);
- :mod:`metrics` — counters/gauges sampled into the existing
  :class:`~repro.des.TimeSeries` machinery;
- :mod:`export` — JSONL trace export/import, per-migration phase
  timelines and summary tables, byte-reconciliation helpers;
- :mod:`cli` — the ``repro-trace`` command.

See ``docs/observability.md`` for the span-name vocabulary and how to
read a phase timeline.
"""

from .export import (
    MigrationSlice,
    migration_slices,
    phase_byte_sums,
    read_jsonl,
    render_timeline,
    render_trace_summary,
    trace_to_jsonl,
    write_jsonl,
)
from .metrics import Counter, Gauge, MetricsRegistry, install_metrics_sampler
from .tracer import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer, assemble_spans

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Span",
    "assemble_spans",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "install_metrics_sampler",
    "trace_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "migration_slices",
    "MigrationSlice",
    "phase_byte_sums",
    "render_timeline",
    "render_trace_summary",
]
