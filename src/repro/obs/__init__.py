"""``repro.obs`` — tracing and metrics for the simulated cluster.

- :mod:`tracer` — typed span/event recording with simulated timestamps,
  zero-overhead when disabled (the default); ``Tracer(causal=True)``
  additionally records parent-span and cross-node ``caused_by`` edges;
- :mod:`metrics` — counters/gauges/histograms sampled into the existing
  :class:`~repro.des.TimeSeries` machinery;
- :mod:`samplers` — per-node ``node.<ip>.*`` pull-based gauges covering
  scheduler, TCP/IP stack, NICs, netfilter capture buffers and the
  conductor peer database;
- :mod:`slo` — declarative SLO rules evaluated against a finished run;
- :mod:`export` — JSONL trace export/import, per-migration phase
  timelines and summary tables, byte-reconciliation helpers;
- :mod:`causal` — the per-session causal DAG, the downtime
  critical-path decomposition (attribution sums to 100% of measured
  downtime) and the degradation breakdown;
- :mod:`perfetto` — Chrome trace-event JSON export for
  ``chrome://tracing`` / ui.perfetto.dev;
- :mod:`diff` — trace-to-trace and bench-to-bench regression
  root-causing;
- :mod:`cli` / :mod:`bench` / :mod:`dash` — the ``repro-trace``,
  ``repro-bench`` and ``repro-dash`` commands.

See ``docs/observability.md`` for the span-name vocabulary, the causal
edge vocabulary, the critical-path methodology, the metric namespace,
the SLO rule syntax and the ``BENCH_*.json`` schema.
"""

from .causal import (
    CausalEdge,
    CausalGraph,
    CausalNode,
    CriticalPath,
    PathSegment,
    build_causal_graph,
    degradation_breakdown,
    downtime_critical_path,
    render_critical_path,
    total_critical_path,
)
from .diff import (
    MetricDelta,
    SessionDiff,
    bench_root_cause_table,
    diff_traces,
    render_trace_diff,
)
from .export import (
    MigrationSlice,
    TraceParseError,
    fault_kinds,
    migration_slices,
    phase_byte_sums,
    plan_strategies,
    read_jsonl,
    render_fault_report,
    render_plan_report,
    render_timeline,
    render_trace_summary,
    trace_to_jsonl,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_metrics_sampler,
)
from .perfetto import to_chrome_trace, write_chrome_trace
from .samplers import install_host_sampler, install_node_samplers, node_metric_prefix
from .slo import SLOCheck, SLOReport, SLORule, evaluate_slos, parse_rule
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    assemble_spans,
    cause_id,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Span",
    "assemble_spans",
    "cause_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install_metrics_sampler",
    "install_host_sampler",
    "install_node_samplers",
    "node_metric_prefix",
    "SLORule",
    "SLOCheck",
    "SLOReport",
    "parse_rule",
    "evaluate_slos",
    "trace_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "TraceParseError",
    "migration_slices",
    "MigrationSlice",
    "phase_byte_sums",
    "render_timeline",
    "render_trace_summary",
    "fault_kinds",
    "render_fault_report",
    "plan_strategies",
    "render_plan_report",
    "CausalNode",
    "CausalEdge",
    "CausalGraph",
    "build_causal_graph",
    "PathSegment",
    "CriticalPath",
    "downtime_critical_path",
    "total_critical_path",
    "degradation_breakdown",
    "render_critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
    "MetricDelta",
    "SessionDiff",
    "diff_traces",
    "render_trace_diff",
    "bench_root_cause_table",
]
