"""``repro.obs`` — tracing and metrics for the simulated cluster.

- :mod:`tracer` — typed span/event recording with simulated timestamps,
  zero-overhead when disabled (the default);
- :mod:`metrics` — counters/gauges/histograms sampled into the existing
  :class:`~repro.des.TimeSeries` machinery;
- :mod:`samplers` — per-node ``node.<ip>.*`` pull-based gauges covering
  scheduler, TCP/IP stack, NICs, netfilter capture buffers and the
  conductor peer database;
- :mod:`slo` — declarative SLO rules evaluated against a finished run;
- :mod:`export` — JSONL trace export/import, per-migration phase
  timelines and summary tables, byte-reconciliation helpers;
- :mod:`cli` / :mod:`bench` / :mod:`dash` — the ``repro-trace``,
  ``repro-bench`` and ``repro-dash`` commands.

See ``docs/observability.md`` for the span-name vocabulary, the metric
namespace, the SLO rule syntax and the ``BENCH_*.json`` schema.
"""

from .export import (
    MigrationSlice,
    fault_kinds,
    migration_slices,
    phase_byte_sums,
    plan_strategies,
    read_jsonl,
    render_fault_report,
    render_plan_report,
    render_timeline,
    render_trace_summary,
    trace_to_jsonl,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_metrics_sampler,
)
from .samplers import install_host_sampler, install_node_samplers, node_metric_prefix
from .slo import SLOCheck, SLOReport, SLORule, evaluate_slos, parse_rule
from .tracer import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer, assemble_spans

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Span",
    "assemble_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install_metrics_sampler",
    "install_host_sampler",
    "install_node_samplers",
    "node_metric_prefix",
    "SLORule",
    "SLOCheck",
    "SLOReport",
    "parse_rule",
    "evaluate_slos",
    "trace_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "migration_slices",
    "MigrationSlice",
    "phase_byte_sums",
    "render_timeline",
    "render_trace_summary",
    "fault_kinds",
    "render_fault_report",
    "plan_strategies",
    "render_plan_report",
]
