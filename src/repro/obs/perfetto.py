"""Chrome trace-event (Perfetto) export of migration traces.

:func:`to_chrome_trace` converts a trace into the `Chrome trace-event
JSON format`_ that ``chrome://tracing`` and https://ui.perfetto.dev load
directly:

- one **process row per cluster node** (plus one for cluster-level
  control records), named via ``M`` metadata events;
- one **thread row per migration session** on each node it touches, so
  concurrent migrations stack instead of interleaving;
- spans become balanced ``B``/``E`` duration pairs (an unfinished span
  is closed at the trace's last timestamp with ``"unfinished": true``);
- point records become ``i`` instants (``fault.*`` get global scope so
  they draw full-height markers);
- cross-node causal edges — explicit ``caused_by`` annotations and the
  structural edges :func:`~repro.obs.causal.build_causal_graph` infers
  on default traces — become ``s``/``f`` flow arrows, so the freeze
  transfer visibly hands off to the destination restore.

Timestamps are simulated seconds scaled to microseconds (the format's
unit); ``displayTimeUnit`` is milliseconds to match the paper's axes.

.. _Chrome trace-event JSON format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .causal import build_causal_graph
from .tracer import TraceEvent

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Fallback process row for records not attributable to a node.
_CONTROL = "cluster"

#: Name prefixes of records emitted by the *destination* side.
_DEST_PREFIXES = ("migd.", "pagefaultd.", "capture.reinject")


def _split_session(session) -> tuple[Optional[str], Optional[str]]:
    """``"src>dst#pid"`` → ``(src, dst)``; ``(None, None)`` otherwise."""
    if not isinstance(session, str) or ">" not in session:
        return None, None
    pair = session.split("#", 1)[0]
    src, _, dst = pair.partition(">")
    return src or None, dst or None


def event_node(ev: TraceEvent) -> str:
    """Which node's track a record belongs on.

    An explicit ``node`` field wins; otherwise destination-daemon
    records (``migd.*``, ``pagefaultd.*``, ``capture.reinject``) go to
    the session's destination and everything else to its source; records
    with neither land on the cluster-level control track.
    """
    node = ev.fields.get("node")
    if node:
        return str(node)
    src, dst = _split_session(ev.fields.get("session"))
    if ev.name.startswith(_DEST_PREFIXES):
        return dst or _CONTROL
    return src or _CONTROL


def _us(t: float) -> float:
    return t * 1e6


def to_chrome_trace(events: list[TraceEvent]) -> dict:
    """Build the ``{"traceEvents": [...]}`` document for a trace."""
    out: list[dict] = []
    if events:
        t_max = max(ev.time for ev in events)
    else:
        t_max = 0.0

    # Track allocation: pid per node, tid per (node, session lane).
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_of(node: str) -> int:
        if node not in pids:
            pids[node] = len(pids) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[node],
                    "tid": 0,
                    "args": {"name": node},
                }
            )
        return pids[node]

    def tid_of(node: str, session) -> int:
        lane = str(session) if session else "(node)"
        key = (node, lane)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == node]) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_of(node),
                    "tid": tids[key],
                    "args": {"name": lane},
                }
            )
        return tids[key]

    def args_of(ev: TraceEvent) -> dict:
        return {
            k: v
            for k, v in ev.fields.items()
            if k not in ("session", "node")
        }

    # Spans first need their begin edges indexed so the end edge lands
    # on the same track, and unfinished spans get a closing edge.
    open_spans: dict[int, tuple[str, int, int]] = {}
    for ev in events:
        if ev.kind == "begin" and ev.span_id is not None:
            node = event_node(ev)
            pid = pid_of(node)
            tid = tid_of(node, ev.fields.get("session"))
            open_spans[ev.span_id] = (node, pid, tid)
            out.append(
                {
                    "ph": "B",
                    "name": ev.name,
                    "cat": ev.name.split(".", 1)[0],
                    "ts": _us(ev.time),
                    "pid": pid,
                    "tid": tid,
                    "args": args_of(ev),
                }
            )
        elif ev.kind == "end" and ev.span_id is not None:
            track = open_spans.pop(ev.span_id, None)
            if track is None:
                continue
            _, pid, tid = track
            out.append(
                {
                    "ph": "E",
                    "name": ev.name,
                    "ts": _us(ev.time),
                    "pid": pid,
                    "tid": tid,
                    "args": args_of(ev),
                }
            )
        else:
            node = event_node(ev)
            out.append(
                {
                    "ph": "i",
                    "name": ev.name,
                    "cat": ev.name.split(".", 1)[0],
                    "s": "g" if ev.name.startswith("fault.") else "t",
                    "ts": _us(ev.time),
                    "pid": pid_of(node),
                    "tid": tid_of(node, ev.fields.get("session")),
                    "args": args_of(ev),
                }
            )
    # Close spans the trace ended inside of — B without E renders as
    # zero-width in some viewers.
    for _span_id, (_, pid, tid) in sorted(open_spans.items()):
        out.append(
            {
                "ph": "E",
                "name": "(unfinished)",
                "ts": _us(t_max),
                "pid": pid,
                "tid": tid,
                "args": {"unfinished": True},
            }
        )

    # Flow arrows for cross-node causal edges.  The graph's explicit
    # edges cover causal-mode traces; its inferred structural edges give
    # default traces the freeze-transfer → restore handoff.
    graph = build_causal_graph(events)
    flow_id = 0
    for edge in graph.edges:
        if edge.kind == "parent":
            continue
        src = graph.nodes.get(edge.src)
        dst = graph.nodes.get(edge.dst)
        if src is None or dst is None or src.event is None or dst.event is None:
            continue
        src_node = event_node(src.event)
        dst_node = event_node(dst.event)
        if src_node == dst_node:
            continue
        flow_id += 1
        # Flow starts bind at the *end* of the causing span (the moment
        # the effect could begin) and at the event time for points —
        # clamped to the effect time, since an effect can land mid-span
        # (a staging record arrives before its round span closes).
        start_ts = src.end if src.end is not None else src.time
        start_ts = min(start_ts, dst.time)
        out.append(
            {
                "ph": "s",
                "name": f"{src.name} -> {dst.name}",
                "cat": "causal",
                "id": flow_id,
                "ts": _us(start_ts),
                "pid": pid_of(src_node),
                "tid": tid_of(src_node, src.event.fields.get("session")),
            }
        )
        out.append(
            {
                "ph": "f",
                "bp": "e",
                "name": f"{src.name} -> {dst.name}",
                "cat": "causal",
                "id": flow_id,
                "ts": _us(dst.time),
                "pid": pid_of(dst_node),
                "tid": tid_of(dst_node, dst.event.fields.get("session")),
            }
        )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path, events: list[TraceEvent]) -> Path:
    """Write :func:`to_chrome_trace` output to ``path`` (parents
    created), returning the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome_trace(events)
    path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return path
