"""Trace export (JSONL) and plain-text phase-timeline rendering.

One JSONL line per :class:`~repro.obs.tracer.TraceEvent`; field values
that are not JSON-native (IP addresses, endpoints) are stringified, so
a re-read trace is structurally identical but weakly typed.  The
renderers mirror the repo's other report output: fixed-width text, one
table per migration.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .tracer import Span, TraceEvent, Tracer, assemble_spans

__all__ = [
    "TraceParseError",
    "trace_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "migration_slices",
    "phase_byte_sums",
    "fault_kinds",
    "render_fault_report",
    "plan_strategies",
    "render_plan_report",
    "render_timeline",
    "render_trace_summary",
]

#: Names whose end-edge byte fields reconcile against PhaseBytes.
PRECOPY_ROUND = "mig.precopy.round"
FREEZE_IMAGE = "mig.freeze.image"
SOCK_SUBTRACT = "sock.subtract"
CAPTURE_REQUEST = "capture.request"
MIG_START = "mig.start"
MIG_COMPLETE = "mig.complete"
MIG_ABORT = "mig.abort"
FAULT_INJECTED = "fault.injected"
PLAN_EMITTED = "plan.emitted"
PLAN_ACTION = "plan.action"
PLAN_OUTCOME = "plan.outcome"
PLAN_DEFER = "plan.defer"
PLAN_DROP = "plan.drop"


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def trace_to_jsonl(trace: Union[Tracer, list[TraceEvent]]) -> str:
    """The whole event stream, one JSON object per line."""
    events = trace.events if isinstance(trace, Tracer) else trace
    out = io.StringIO()
    for ev in events:
        out.write(json.dumps(_jsonable(ev.to_dict()), separators=(",", ":")))
        out.write("\n")
    return out.getvalue()


def write_jsonl(path: Union[str, Path], trace: Union[Tracer, list[TraceEvent]]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_jsonl(trace))
    return path


class TraceParseError(ValueError):
    """A trace line that is not a valid :class:`TraceEvent` record.

    Carries the file and 1-based line number so a truncated or corrupt
    trace (killed run, partial copy) fails with *where*, not just a bare
    ``json.JSONDecodeError``.
    """

    def __init__(self, path: Path, lineno: int, reason: str) -> None:
        self.path = path
        self.lineno = lineno
        self.reason = reason
        super().__init__(f"{path}:{lineno}: bad trace record: {reason}")


def read_jsonl(
    path: Union[str, Path], *, skip_bad_lines: bool = False
) -> list[TraceEvent]:
    """Read a JSONL trace back into events.

    Raises :class:`TraceParseError` (with file and line number) on the
    first malformed line; with ``skip_bad_lines=True`` malformed lines
    are dropped instead — the escape hatch for analysing what survives
    of a truncated trace (``repro-trace --skip-bad-lines``).
    """
    path = Path(path)
    events = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            if skip_bad_lines:
                continue
            reason = (
                f"missing key {exc}" if isinstance(exc, KeyError) else str(exc)
            )
            raise TraceParseError(path, lineno, reason) from exc
    return events


@dataclass
class MigrationSlice:
    """The records of one migration attempt (one ``mig.start`` .. its
    terminal ``mig.complete``/``mig.abort``)."""

    pid: int
    start: TraceEvent
    #: Session id string (``source>dest#pid``); None for traces from
    #: before sessions existed.
    session: Optional[str] = None
    events: list[TraceEvent] = field(default_factory=list)
    terminal: Optional[TraceEvent] = None

    @property
    def strategy(self) -> str:
        return str(self.start.fields.get("strategy", "?"))

    @property
    def succeeded(self) -> Optional[bool]:
        if self.terminal is None:
            return None
        return self.terminal.name == MIG_COMPLETE

    def spans(self, name: Optional[str] = None) -> list[Span]:
        return assemble_spans(self.events, name)


def migration_slices(events: list[TraceEvent]) -> list[MigrationSlice]:
    """Split a stream into per-migration slices, grouped by session.

    A record belongs to the open slice of its ``session`` field (the
    ``source>dest#pid`` session id); records without one — traces from
    before sessions existed, or raw-protocol exercises — fall back to
    grouping by ``pid``.  Span end edges usually carry neither (only
    result fields), so they follow the slice of their *begin* edge.
    Other unattributable records (conductor chatter, transd installs)
    are left out of every slice.

    Session grouping is what keeps *concurrent* migrations apart: two
    in-flight migrations of equal-pid processes land in two slices.
    """
    open_by_key: dict = {}
    #: span_id -> owning slice, for end edges without a session/pid.
    span_owner: dict[int, MigrationSlice] = {}
    out: list[MigrationSlice] = []
    for ev in events:
        pid = ev.fields.get("pid")
        session = ev.fields.get("session")
        key = session if session is not None else pid
        if ev.name == MIG_START and pid is not None:
            sl = MigrationSlice(pid=pid, start=ev, session=session)
            sl.events.append(ev)
            open_by_key[key] = sl
            out.append(sl)
            continue
        if key is None:
            if ev.kind == "end" and ev.span_id is not None:
                sl = span_owner.pop(ev.span_id, None)
                if sl is not None:
                    sl.events.append(ev)
            continue
        sl = open_by_key.get(key)
        if sl is None:
            continue
        sl.events.append(ev)
        if ev.kind == "begin" and ev.span_id is not None:
            span_owner[ev.span_id] = sl
        if ev.name in (MIG_COMPLETE, MIG_ABORT):
            sl.terminal = ev
            del open_by_key[key]
    return out


def phase_byte_sums(sl: MigrationSlice) -> dict[str, int]:
    """Per-phase byte totals recomputed purely from trace records.

    The keys mirror :class:`~repro.core.stats.PhaseBytes`; for a traced
    migration these sums reconcile exactly with the report counters.
    """
    sums = {
        "precopy_pages": 0,
        "precopy_vmas": 0,
        "precopy_sockets": 0,
        "freeze_pages": 0,
        "freeze_vmas": 0,
        "freeze_sockets": 0,
        "freeze_files": 0,
        "freeze_threads": 0,
        "capture_requests": 0,
    }
    for ev in sl.events:
        if ev.name == PRECOPY_ROUND and ev.kind == "end":
            sums["precopy_pages"] += int(ev.fields.get("page_bytes", 0))
            sums["precopy_vmas"] += int(ev.fields.get("vma_bytes", 0))
            sums["precopy_sockets"] += int(ev.fields.get("sock_bytes", 0))
        elif ev.name == FREEZE_IMAGE:
            sums["freeze_pages"] += int(ev.fields.get("page_bytes", 0))
            sums["freeze_vmas"] += int(ev.fields.get("vma_bytes", 0))
            sums["freeze_files"] += int(ev.fields.get("file_bytes", 0))
            sums["freeze_threads"] += int(ev.fields.get("thread_bytes", 0))
        elif ev.name == SOCK_SUBTRACT:
            sums["freeze_sockets"] += int(ev.fields.get("nbytes", 0))
        elif ev.name == CAPTURE_REQUEST:
            sums["capture_requests"] += int(ev.fields.get("nbytes", 0))
    return sums


def fault_kinds(events: list[TraceEvent]) -> list[str]:
    """Fault kinds (``crash``, ``loss``, ...) injected in this trace."""
    return sorted(
        {
            str(ev.fields.get("kind"))
            for ev in events
            if ev.name == FAULT_INJECTED and ev.fields.get("kind") is not None
        }
    )


def render_fault_report(events: list[TraceEvent], kind: Optional[str] = None) -> str:
    """Injected faults and the recovery activity they provoked.

    One row per ``fault.injected`` record (optionally filtered to one
    ``kind``), a per-link impairment rollup of the individual
    ``fault.link.drop``/``fault.link.corrupt`` records, and one row per
    ``recover.*`` decision (detector verdicts, retries, backoffs,
    give-ups) — the same vocabulary docs/faults.md documents.
    """
    from ..analysis.report import render_table

    injected = [ev for ev in events if ev.name == FAULT_INJECTED]
    if kind is not None:
        injected = [ev for ev in injected if ev.fields.get("kind") == kind]
    blocks = []
    if injected:
        rows = [
            [
                f"{ev.time:.6f}",
                ev.fields.get("kind", "?"),
                ev.fields.get("scope", "?"),
                ev.fields.get("target", "?"),
                _fmt_fields(ev.fields, skip=("kind", "scope", "target", "fault")),
            ]
            for ev in injected
        ]
        blocks.append(
            render_table(
                ["t (s)", "kind", "scope", "target", "detail"],
                rows,
                title="Injected faults"
                + (f" (kind={kind})" if kind is not None else ""),
            )
        )
    else:
        blocks.append(
            "(no injected faults in trace)"
            if kind is None
            else f"(no injected faults of kind {kind!r} in trace)"
        )

    drops: dict[str, list[int]] = {}
    for ev in events:
        if ev.name in ("fault.link.drop", "fault.link.corrupt"):
            per = drops.setdefault(str(ev.fields.get("link", "?")), [0, 0, 0])
            per[0 if ev.name.endswith("drop") else 1] += 1
            per[2] += int(ev.fields.get("bytes", 0))
    if drops:
        rows = [
            [link, dropped, corrupted, nbytes]
            for link, (dropped, corrupted, nbytes) in sorted(drops.items())
        ]
        blocks.append(
            render_table(
                ["link", "dropped", "corrupted", "bytes lost"],
                rows,
                title="Link impairments",
            )
        )

    recover = [ev for ev in events if ev.name.startswith("recover.")]
    if recover:
        rows = [
            [
                f"{ev.time:.6f}",
                ev.name[len("recover."):],
                ev.fields.get("node", "?"),
                _fmt_fields(ev.fields, skip=("node",)),
            ]
            for ev in recover
        ]
        blocks.append(
            render_table(
                ["t (s)", "decision", "node", "detail"],
                rows,
                title="Detection & recovery",
            )
        )
    return "\n\n".join(blocks)


def plan_strategies(events: list[TraceEvent]) -> list[str]:
    """Strategy names that emitted ``plan.*`` records in this trace."""
    return sorted(
        {
            str(ev.fields.get("strategy"))
            for ev in events
            if ev.name.startswith("plan.")
            and ev.fields.get("strategy") is not None
        }
    )


def render_plan_report(
    events: list[TraceEvent], strategy: Optional[str] = None
) -> str:
    """The decision plane's story: plans, actions, and their fates.

    Three tables from the ``plan.*`` vocabulary (emitted by the
    conductor's planner and the consolidator, see docs/strategies.md):
    one row per ``plan.emitted``, one row per planned action with its
    eventual outcome (executed / retried / vetoed / aborted, or
    deferred / dropped while parked), and a per-strategy rollup with
    the score distribution (min / mean / max) of its actions.
    Optionally filtered to one strategy name.
    """
    from ..analysis.report import render_table

    plan_events = [ev for ev in events if ev.name.startswith("plan.")]
    if strategy is not None:
        plan_events = [
            ev for ev in plan_events if ev.fields.get("strategy") == strategy
        ]
    if not plan_events:
        return (
            "(no plan.* records in trace — the default paper-threshold "
            "strategy traces plans only with ConductorConfig.trace_plans=True)"
            if strategy is None
            else f"(no plan.* records for strategy {strategy!r} in trace)"
        )

    blocks = []
    emitted = [ev for ev in plan_events if ev.name == PLAN_EMITTED]
    if emitted:
        rows = [
            [
                f"{ev.time:.6f}",
                ev.fields.get("node", "?"),
                ev.fields.get("strategy", "?"),
                ev.fields.get("actions", "?"),
            ]
            for ev in emitted
        ]
        blocks.append(
            render_table(
                ["t (s)", "node", "strategy", "actions"],
                rows,
                title="Plans emitted",
            )
        )

    # Pair each action with the latest fate recorded for its pid after
    # the action was planned (outcome, defer or drop).
    fates = [
        ev
        for ev in plan_events
        if ev.name in (PLAN_OUTCOME, PLAN_DEFER, PLAN_DROP)
    ]

    def fate_of(action: TraceEvent) -> str:
        pid = action.fields.get("pid")
        for ev in fates:
            if ev.fields.get("pid") == pid and ev.time >= action.time:
                if ev.name == PLAN_OUTCOME:
                    return str(ev.fields.get("outcome", "?"))
                return "deferred" if ev.name == PLAN_DEFER else (
                    f"dropped ({ev.fields.get('reason', '?')})"
                )
        return "pending"

    actions = [ev for ev in plan_events if ev.name == PLAN_ACTION]
    if actions:
        rows = []
        for ev in actions:
            nb = ev.fields.get("not_before", 0.0) or 0.0
            rows.append(
                [
                    f"{ev.time:.6f}",
                    ev.fields.get("node", "?"),
                    ev.fields.get("strategy", "?"),
                    f"{ev.fields.get('proc', '?')} (pid {ev.fields.get('pid', '?')})",
                    ev.fields.get("dest") or "-",
                    f"{float(ev.fields.get('score', 0.0)):.2f}",
                    f"{float(nb):.1f}" if nb else "-",
                    fate_of(ev),
                ]
            )
        blocks.append(
            render_table(
                [
                    "t (s)",
                    "node",
                    "strategy",
                    "process",
                    "dest",
                    "score",
                    "not before",
                    "fate",
                ],
                rows,
                title="Planned actions",
            )
        )

    # Per-strategy rollup: action counts by fate + score distribution.
    per: dict[str, dict] = {}
    for ev in actions:
        s = str(ev.fields.get("strategy", "?"))
        agg = per.setdefault(s, {"scores": [], "fates": {}})
        agg["scores"].append(float(ev.fields.get("score", 0.0)))
        fate = fate_of(ev).split(" ")[0]
        agg["fates"][fate] = agg["fates"].get(fate, 0) + 1
    if per:
        rows = []
        for s in sorted(per):
            scores = per[s]["scores"]
            fates_s = " ".join(
                f"{k}={v}" for k, v in sorted(per[s]["fates"].items())
            )
            rows.append(
                [
                    s,
                    len(scores),
                    f"{min(scores):.2f}",
                    f"{sum(scores) / len(scores):.2f}",
                    f"{max(scores):.2f}",
                    fates_s,
                ]
            )
        blocks.append(
            render_table(
                ["strategy", "actions", "score min", "mean", "max", "fates"],
                rows,
                title="Per-strategy score distribution",
            )
        )
    return "\n\n".join(blocks)


def _fmt_fields(fields: dict, skip=("pid", "session")) -> str:
    parts = []
    for k, v in fields.items():
        if k in skip:
            continue
        if isinstance(v, float):
            v = f"{v:.6g}"
        parts.append(f"{k}={v}")
    return " ".join(parts)


def render_timeline(
    events: list[TraceEvent],
    pid: Optional[int] = None,
    max_rows: int = 200,
    session: Optional[str] = None,
) -> str:
    """Per-migration phase timelines: each record at its offset (ms)
    from the migration's start, spans with their durations.  One block
    per session, so interleaved concurrent migrations stay separate."""
    from ..analysis.report import render_table

    slices = migration_slices(events)
    if pid is not None:
        slices = [s for s in slices if s.pid == pid]
    if session is not None:
        slices = [s for s in slices if s.session == session]
    if not slices:
        return "(no migrations in trace)"
    blocks = []
    for sl in slices:
        t0 = sl.start.time
        rows = []
        ended = {
            e.span_id for e in sl.events if e.kind == "end" and e.span_id is not None
        }
        spans_by_id = {s.span_id: s for s in sl.spans()}
        for ev in sl.events:
            if ev.kind == "end":
                continue  # folded into the begin row below
            label = ev.name
            detail = _fmt_fields(ev.fields)
            if ev.kind == "begin":
                span = spans_by_id.get(ev.span_id)
                if span is not None and span.end is not None:
                    detail = (
                        f"[{(span.end - span.start) * 1e3:.3f} ms] "
                        + _fmt_fields(span.fields)
                    ).strip()
                elif ev.span_id not in ended:
                    detail = "[unfinished] " + detail
            rows.append([f"{(ev.time - t0) * 1e3:+.3f}", label, detail])
        dropped = max(0, len(rows) - max_rows)
        if dropped:
            rows = rows[: max_rows // 2] + rows[-(max_rows - max_rows // 2):]
        status = {True: "success", False: "aborted", None: "unfinished"}[sl.succeeded]
        ident = (
            f"session={sl.session}"
            if sl.session is not None
            else (
                f"pid={sl.pid} "
                f"{sl.start.fields.get('source', '?')}->{sl.start.fields.get('dest', '?')}"
            )
        )
        title = (
            f"migration {ident} strategy={sl.strategy} "
            f"start={t0:.6f}s [{status}]"
            + (f" ({dropped} rows elided)" if dropped else "")
        )
        blocks.append(
            render_table(["t+ (ms)", "record", "detail"], rows, title=title)
        )
    return "\n\n".join(blocks)


def render_trace_summary(events: list[TraceEvent]) -> str:
    """One row per migration: phases, rounds, downtime, byte totals."""
    from ..analysis.report import render_table

    rows = []
    for sl in migration_slices(events):
        rounds = [s for s in sl.spans(PRECOPY_ROUND) if s.end is not None]
        freeze = [e for e in sl.events if e.name == "mig.freeze.enter"]
        thaw = [e for e in sl.events if e.name == "migd.thaw"]
        downtime_ms = (
            (thaw[0].time - freeze[0].time) * 1e3 if freeze and thaw else float("nan")
        )
        sums = phase_byte_sums(sl)
        precopy_bytes = (
            sums["precopy_pages"] + sums["precopy_vmas"] + sums["precopy_sockets"]
        )
        freeze_bytes = (
            sums["freeze_pages"]
            + sums["freeze_vmas"]
            + sums["freeze_sockets"]
            + sums["freeze_files"]
            + sums["freeze_threads"]
        )
        status = {True: "ok", False: "abort", None: "?"}[sl.succeeded]
        rows.append(
            [
                sl.session if sl.session is not None else "-",
                sl.pid,
                sl.strategy,
                f"{sl.start.fields.get('source', '?')}->{sl.start.fields.get('dest', '?')}",
                len(rounds),
                f"{downtime_ms:.3f}" if downtime_ms == downtime_ms else "-",
                precopy_bytes,
                freeze_bytes,
                sums["capture_requests"],
                status,
            ]
        )
    if not rows:
        return "(no migrations in trace)"
    return render_table(
        [
            "session",
            "pid",
            "strategy",
            "route",
            "rounds",
            "downtime (ms)",
            "precopy B",
            "freeze B",
            "capture B",
            "result",
        ],
        rows,
        title="Trace summary: one row per migration",
    )
