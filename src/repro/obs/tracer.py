"""Structured tracing for the simulation (the observability substrate).

The paper's whole evaluation is a set of timelines — freeze intervals,
per-phase byte counts, packet gaps, per-node CPU series — yet a
:class:`~repro.core.stats.MigrationReport` only shows the terminal
numbers.  The tracer records *typed, timestamped* records as the
simulation runs: point events (``tracer.event``) and spans with a begin
and an end (``tracer.begin``/``tracer.end`` or the ``tracer.span``
context manager), all stamped with **simulated** time.

Design constraints:

- **Zero overhead when disabled.**  Every :class:`~repro.des.Environment`
  carries :data:`NULL_TRACER` by default, whose methods are no-ops; hot
  call sites additionally guard with ``if tracer.enabled:`` so not even
  a kwargs dict is built on the common path.
- **One tracer per environment.**  All simulated machines share one DES
  environment, so one tracer sees both sides of a migration (source
  engine *and* destination migd) in a single ordered record stream.
- **Plain data.**  A trace is a list of :class:`TraceEvent`; JSONL
  export/import lives in :mod:`repro.obs.export`.

Span names follow a dotted ``layer.phase.action`` taxonomy; the full
vocabulary is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceEvent", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class TraceEvent:
    """One trace record.

    ``kind`` is ``"event"`` for point events, ``"begin"``/``"end"`` for
    the two edges of a span.  Begin/end edges of the same span share a
    ``span_id``; point events have ``span_id is None``.
    """

    time: float
    name: str
    kind: str = "event"
    span_id: Optional[int] = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"t": self.time, "name": self.name, "kind": self.kind}
        if self.span_id is not None:
            out["span"] = self.span_id
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(
            time=float(d["t"]),
            name=d["name"],
            kind=d.get("kind", "event"),
            span_id=d.get("span"),
            fields=dict(d.get("fields", {})),
        )


@dataclass
class Span:
    """A matched begin/end pair, reassembled from the event stream."""

    name: str
    span_id: int
    start: float
    #: ``None`` for a span whose end edge was never recorded (e.g. the
    #: migration aborted inside it).
    end: Optional[float]
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


class Tracer:
    """Recording tracer: appends :class:`TraceEvent` records.

    ``clock`` is anything with a ``now`` attribute (normally the DES
    :class:`~repro.des.Environment`), read at record time so events are
    stamped with simulated timestamps.
    """

    enabled = True

    def __init__(self, clock) -> None:
        self._clock = clock
        self.events: list[TraceEvent] = []
        self._next_span_id = 0

    def __len__(self) -> int:
        return len(self.events)

    # -- recording -----------------------------------------------------------
    # The record name is positional-only so a field can itself be called
    # ``name`` (e.g. a process name) without colliding with it.
    def event(self, name: str, /, **fields) -> None:
        """Record a point event."""
        self.events.append(TraceEvent(self._clock.now, name, "event", None, fields))

    def begin(self, name: str, /, **fields) -> int:
        """Open a span; returns its id for the matching :meth:`end`."""
        self._next_span_id += 1
        sid = self._next_span_id
        self.events.append(TraceEvent(self._clock.now, name, "begin", sid, fields))
        return sid

    def end(self, span_id: int, /, **fields) -> None:
        """Close the span opened by :meth:`begin`.  Extra fields are
        attached to the end edge (e.g. byte counts known only then)."""
        name = ""
        for ev in reversed(self.events):
            if ev.span_id == span_id and ev.kind == "begin":
                name = ev.name
                break
        self.events.append(TraceEvent(self._clock.now, name, "end", span_id, fields))

    def span(self, name: str, /, **fields):
        """Context manager sugar around :meth:`begin`/:meth:`end`."""
        return _SpanContext(self, name, fields)

    # -- queries -------------------------------------------------------------
    def named(self, name: str) -> list[TraceEvent]:
        """All records with exactly this name."""
        return [e for e in self.events if e.name == name]

    def spans(self, name: Optional[str] = None) -> list[Span]:
        """Reassemble begin/end pairs into :class:`Span` objects."""
        return assemble_spans(self.events, name)

    def clear(self) -> None:
        self.events.clear()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_fields", "span_id")

    def __init__(self, tracer: Tracer, name: str, fields: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self.span_id: Optional[int] = None

    def __enter__(self) -> "_SpanContext":
        self.span_id = self._tracer.begin(self._name, **self._fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.span_id is not None
        if exc_type is None:
            self._tracer.end(self.span_id)
        else:
            self._tracer.end(self.span_id, error=f"{exc_type.__name__}: {exc}")


class NullTracer:
    """Disabled tracer: every method is a no-op.

    This is the default on every environment; call sites that build
    field dicts should still guard with ``if tracer.enabled:`` so the
    disabled path costs one attribute load and a branch.
    """

    enabled = False
    events: list = []  # always empty; shared is fine, nobody appends

    def event(self, name: str, /, **fields) -> None:
        pass

    def begin(self, name: str, /, **fields) -> int:
        return 0

    def end(self, span_id: int, /, **fields) -> None:
        pass

    def span(self, name: str, /, **fields):
        return _NULL_SPAN

    def named(self, name: str) -> list:
        return []

    def spans(self, name: Optional[str] = None) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class _NullSpanContext:
    span_id = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()

#: Shared disabled tracer; the default for every Environment.
NULL_TRACER = NullTracer()


def assemble_spans(
    events: list[TraceEvent], name: Optional[str] = None
) -> list[Span]:
    """Pair begin/end edges in an event list into :class:`Span` records
    (also used on streams re-read from JSONL).  Unclosed spans get
    ``end=None``."""
    open_spans: dict[int, Span] = {}
    out: list[Span] = []
    for ev in events:
        if ev.span_id is None:
            continue
        if ev.kind == "begin":
            span = Span(ev.name, ev.span_id, ev.time, None, dict(ev.fields))
            open_spans[ev.span_id] = span
            out.append(span)
        elif ev.kind == "end":
            span = open_spans.pop(ev.span_id, None)
            if span is not None:
                span.end = ev.time
                span.fields.update(ev.fields)
    if name is not None:
        out = [s for s in out if s.name == name]
    return out


def iter_point_events(events: list[TraceEvent]) -> Iterator[TraceEvent]:
    """Only the point events of a stream (no span edges)."""
    return (e for e in events if e.kind == "event")
