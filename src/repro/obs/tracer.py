"""Structured tracing for the simulation (the observability substrate).

The paper's whole evaluation is a set of timelines — freeze intervals,
per-phase byte counts, packet gaps, per-node CPU series — yet a
:class:`~repro.core.stats.MigrationReport` only shows the terminal
numbers.  The tracer records *typed, timestamped* records as the
simulation runs: point events (``tracer.event``) and spans with a begin
and an end (``tracer.begin``/``tracer.end`` or the ``tracer.span``
context manager), all stamped with **simulated** time.

Design constraints:

- **Zero overhead when disabled.**  Every :class:`~repro.des.Environment`
  carries :data:`NULL_TRACER` by default, whose methods are no-ops; hot
  call sites additionally guard with ``if tracer.enabled:`` so not even
  a kwargs dict is built on the common path.
- **One tracer per environment.**  All simulated machines share one DES
  environment, so one tracer sees both sides of a migration (source
  engine *and* destination migd) in a single ordered record stream.
- **Plain data.**  A trace is a list of :class:`TraceEvent`; JSONL
  export/import lives in :mod:`repro.obs.export`.

Span names follow a dotted ``layer.phase.action`` taxonomy; the full
vocabulary is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = [
    "TraceEvent",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "cause_id",
]


@dataclass
class TraceEvent:
    """One trace record.

    ``kind`` is ``"event"`` for point events, ``"begin"``/``"end"`` for
    the two edges of a span.  Begin/end edges of the same span share a
    ``span_id``; point events have ``span_id is None``.

    The three causal attributes are populated only by a tracer in
    **causal mode** (``Tracer(causal=True)``); default traces never
    carry them, so their JSONL serialization is byte-identical with
    pre-causal tracers:

    - ``parent`` — id of the enclosing span (hierarchy);
    - ``caused_by`` — id of the record that *caused* this one, possibly
      on another node (the cross-node causal edge);
    - ``ref`` — this point event's own causal id, allocated when other
      records need to name it as a cause (spans are referenced by their
      ``span_id`` instead).

    Ids live in one namespace (the tracer's span counter), so a cause
    is unambiguous whether it is a span or a point event.
    """

    time: float
    name: str
    kind: str = "event"
    span_id: Optional[int] = None
    fields: dict[str, Any] = field(default_factory=dict)
    parent: Optional[int] = None
    caused_by: Optional[int] = None
    ref: Optional[int] = None

    def to_dict(self) -> dict:
        out = {"t": self.time, "name": self.name, "kind": self.kind}
        if self.span_id is not None:
            out["span"] = self.span_id
        if self.ref is not None:
            out["ref"] = self.ref
        if self.parent is not None:
            out["parent"] = self.parent
        if self.caused_by is not None:
            out["caused_by"] = self.caused_by
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(
            time=float(d["t"]),
            name=d["name"],
            kind=d.get("kind", "event"),
            span_id=d.get("span"),
            fields=dict(d.get("fields", {})),
            parent=d.get("parent"),
            caused_by=d.get("caused_by"),
            ref=d.get("ref"),
        )


def cause_id(ev: TraceEvent) -> Optional[int]:
    """The id other records use to name ``ev`` as a cause: the span id
    for span edges, the causal ``ref`` for point events."""
    return ev.span_id if ev.span_id is not None else ev.ref


@dataclass
class Span:
    """A matched begin/end pair, reassembled from the event stream."""

    name: str
    span_id: int
    start: float
    #: ``None`` for a span whose end edge was never recorded (e.g. the
    #: migration aborted inside it).
    end: Optional[float]
    fields: dict[str, Any] = field(default_factory=dict)
    #: Causal annotations copied from the begin edge (causal mode only).
    parent: Optional[int] = None
    caused_by: Optional[int] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


class Tracer:
    """Recording tracer: appends :class:`TraceEvent` records.

    ``clock`` is anything with a ``now`` attribute (normally the DES
    :class:`~repro.des.Environment`), read at record time so events are
    stamped with simulated timestamps.

    ``causal=True`` switches on **causal annotation**: the keyword-only
    ``parent=`` / ``caused_by=`` arguments of :meth:`event` /
    :meth:`begin` are recorded, and ``event(..., ref=True)`` allocates
    a causal id for the point event and returns it.  With causal mode
    off (the default) those arguments are accepted and *dropped*, so
    instrumentation sites can pass them unconditionally while default
    same-seed traces stay byte-identical.

    ``max_events=N`` bounds tracer memory with a ring buffer: once full,
    the oldest record is dropped per append and counted in
    :attr:`dropped_events` (mirrored into the ``obs.dropped_events``
    metrics counter when the environment has a registry).  The default
    (``None``) keeps the historical unbounded list.
    """

    enabled = True

    def __init__(
        self,
        clock,
        *,
        causal: bool = False,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self._clock = clock
        self.causal = bool(causal)
        self.max_events = max_events
        self.dropped_events = 0
        self.events = deque() if max_events is not None else []
        self._next_span_id = 0

    def __len__(self) -> int:
        return len(self.events)

    def _append(self, ev: TraceEvent) -> None:
        events = self.events
        if self.max_events is not None and len(events) >= self.max_events:
            events.popleft()
            self.dropped_events += 1
            metrics = getattr(self._clock, "metrics", None)
            if metrics is not None:
                metrics.counter("obs.dropped_events").inc()
        events.append(ev)

    # -- recording -----------------------------------------------------------
    # The record name is positional-only so a field can itself be called
    # ``name`` (e.g. a process name) without colliding with it.  The
    # causal keywords (``parent``, ``caused_by``, ``ref``) are reserved
    # and cannot be used as field names.
    def event(
        self,
        name: str,
        /,
        *,
        parent: Optional[int] = None,
        caused_by: Optional[int] = None,
        ref: bool = False,
        **fields,
    ) -> int:
        """Record a point event.

        Returns the event's causal id when ``ref=True`` and the tracer
        is in causal mode, else 0 — callers can thread the return value
        into later ``caused_by=`` arguments unconditionally (0 and
        ``None`` are both "no cause")."""
        if not self.causal:
            self._append(TraceEvent(self._clock.now, name, "event", None, fields))
            return 0
        eid = 0
        if ref:
            self._next_span_id += 1
            eid = self._next_span_id
        self._append(
            TraceEvent(
                self._clock.now,
                name,
                "event",
                None,
                fields,
                parent=parent or None,
                caused_by=caused_by or None,
                ref=eid or None,
            )
        )
        return eid

    def begin(
        self,
        name: str,
        /,
        *,
        parent: Optional[int] = None,
        caused_by: Optional[int] = None,
        **fields,
    ) -> int:
        """Open a span; returns its id for the matching :meth:`end`."""
        self._next_span_id += 1
        sid = self._next_span_id
        if self.causal:
            ev = TraceEvent(
                self._clock.now,
                name,
                "begin",
                sid,
                fields,
                parent=parent or None,
                caused_by=caused_by or None,
            )
        else:
            ev = TraceEvent(self._clock.now, name, "begin", sid, fields)
        self._append(ev)
        return sid

    def end(self, span_id: int, /, **fields) -> None:
        """Close the span opened by :meth:`begin`.  Extra fields are
        attached to the end edge (e.g. byte counts known only then)."""
        name = ""
        for ev in reversed(self.events):
            if ev.span_id == span_id and ev.kind == "begin":
                name = ev.name
                break
        self._append(TraceEvent(self._clock.now, name, "end", span_id, fields))

    def span(self, name: str, /, **fields):
        """Context manager sugar around :meth:`begin`/:meth:`end`."""
        return _SpanContext(self, name, fields)

    # -- queries -------------------------------------------------------------
    def named(self, name: str) -> list[TraceEvent]:
        """All records with exactly this name."""
        return [e for e in self.events if e.name == name]

    def spans(self, name: Optional[str] = None) -> list[Span]:
        """Reassemble begin/end pairs into :class:`Span` objects."""
        return assemble_spans(self.events, name)

    def clear(self) -> None:
        self.events.clear()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_fields", "span_id")

    def __init__(self, tracer: Tracer, name: str, fields: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self.span_id: Optional[int] = None

    def __enter__(self) -> "_SpanContext":
        self.span_id = self._tracer.begin(self._name, **self._fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.span_id is not None
        if exc_type is None:
            self._tracer.end(self.span_id)
        else:
            self._tracer.end(self.span_id, error=f"{exc_type.__name__}: {exc}")


class NullTracer:
    """Disabled tracer: every method is a no-op.

    This is the default on every environment; call sites that build
    field dicts should still guard with ``if tracer.enabled:`` so the
    disabled path costs one attribute load and a branch.
    """

    enabled = False
    causal = False
    dropped_events = 0
    max_events = None
    events: list = []  # always empty; shared is fine, nobody appends

    def event(self, name: str, /, **fields) -> int:
        return 0

    def begin(self, name: str, /, **fields) -> int:
        return 0

    def end(self, span_id: int, /, **fields) -> None:
        pass

    def span(self, name: str, /, **fields):
        return _NULL_SPAN

    def named(self, name: str) -> list:
        return []

    def spans(self, name: Optional[str] = None) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class _NullSpanContext:
    span_id = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()

#: Shared disabled tracer; the default for every Environment.
NULL_TRACER = NullTracer()


def assemble_spans(
    events: list[TraceEvent], name: Optional[str] = None
) -> list[Span]:
    """Pair begin/end edges in an event list into :class:`Span` records
    (also used on streams re-read from JSONL).  Unclosed spans get
    ``end=None``."""
    open_spans: dict[int, Span] = {}
    out: list[Span] = []
    for ev in events:
        if ev.span_id is None:
            continue
        if ev.kind == "begin":
            span = Span(
                ev.name,
                ev.span_id,
                ev.time,
                None,
                dict(ev.fields),
                parent=ev.parent,
                caused_by=ev.caused_by,
            )
            open_spans[ev.span_id] = span
            out.append(span)
        elif ev.kind == "end":
            span = open_spans.pop(ev.span_id, None)
            if span is not None:
                span.end = ev.time
                span.fields.update(ev.fields)
    if name is not None:
        out = [s for s in out if s.name == name]
    return out


def iter_point_events(events: list[TraceEvent]) -> Iterator[TraceEvent]:
    """Only the point events of a stream (no span edges)."""
    return (e for e in events if e.kind == "event")
