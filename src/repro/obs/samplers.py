"""Per-node telemetry samplers: the layers the paper measures, as metrics.

The evaluation reads distributions off every layer of a node — scheduler
run-queue depth and CPU share (Fig. 5e/5f), TCP queue occupancy (the
socket-subtraction cost driver of Fig. 5b/5c), NIC traffic and drops,
netfilter capture-buffer occupancy during a migration (Section V-B),
and conductor peer-database staleness (Section IV).  This module
registers one callback gauge per quantity under a uniform
``node.<ip>.*`` namespace.

Everything is *pull-based*: a gauge closure reads existing kernel/stack
state only when the registry is sampled, so instrumented components pay
nothing on their hot paths — and when the environment has no metrics
registry at all, :func:`install_node_samplers` is a no-op and not even
the closures exist.

Kept import-light on purpose (no ``repro.net`` / ``repro.oskern``
imports at module scope): ``repro.des.engine`` imports the ``repro.obs``
package, so obs modules must not import the layers back at import time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster
    from ..oskern.node import Host
    from .metrics import MetricsRegistry

__all__ = ["node_metric_prefix", "install_node_samplers", "install_host_sampler"]


def node_metric_prefix(host: "Host") -> str:
    """The metric namespace of one host: ``node.<local ip>`` (the local
    address is what distinguishes nodes of the single-public-IP cluster;
    public-only hosts fall back to their public address)."""
    kernel = host.kernel
    iface = kernel.local_iface if kernel.local_iface is not None else kernel.public_iface
    return f"node.{iface.ip}"


def _iface_gauges(registry: "MetricsRegistry", prefix: str, iface) -> None:
    p = f"{prefix}.nic.{iface.kind}"
    registry.gauge(f"{p}.tx_bytes", fn=lambda: iface.tx_bytes)
    registry.gauge(f"{p}.rx_bytes", fn=lambda: iface.rx_bytes)
    registry.gauge(f"{p}.tx_packets", fn=lambda: iface.tx_packets)
    registry.gauge(f"{p}.rx_packets", fn=lambda: iface.rx_packets)
    link = iface.link
    if link is not None:
        side = iface.side
        # Seconds a packet handed to the NIC right now would wait for
        # the transmitter: the FIFO backlog, i.e. link utilisation
        # pressure in time units.
        registry.gauge(f"{p}.tx_backlog_s", fn=lambda: link.queueing_delay(side))


def install_host_sampler(host: "Host", registry: Optional["MetricsRegistry"] = None) -> list[str]:
    """Register the ``node.<ip>.*`` gauges for one host.

    Returns the metric names registered (empty when the host's
    environment has no metrics registry — the disabled case costs
    nothing).  Idempotent: re-installing rebinds the same names.
    """
    if registry is None:
        registry = host.env.metrics
    if registry is None:
        return []
    kernel = host.kernel
    stack = kernel.stack
    prefix = node_metric_prefix(host)
    before = set(registry.names())

    # -- scheduler (oskern.sched) -----------------------------------------
    cpu = kernel.cpu
    registry.gauge(f"{prefix}.sched.runq", fn=cpu.runq_depth)
    registry.gauge(f"{prefix}.sched.cpu_util", fn=cpu.utilization)
    registry.gauge(f"{prefix}.sched.nprocs", fn=lambda: len(kernel.processes))

    # -- TCP/IP stack (tcpip.stack) ---------------------------------------
    registry.gauge(f"{prefix}.tcp.established", fn=lambda: len(stack.tables.ehash))
    registry.gauge(f"{prefix}.tcp.send_q_bytes", fn=lambda: stack.queue_bytes()[0])
    registry.gauge(f"{prefix}.tcp.recv_q_bytes", fn=lambda: stack.queue_bytes()[1])
    registry.gauge(f"{prefix}.tcp.ooo_q_bytes", fn=lambda: stack.queue_bytes()[2])
    ip = stack.ip
    registry.gauge(f"{prefix}.ip.delivered", fn=lambda: ip.delivered)
    registry.gauge(
        f"{prefix}.ip.drops",
        fn=lambda: ip.checksum_drops + ip.no_socket_drops + ip.hook_drops,
    )

    # -- NIC / links (net) -------------------------------------------------
    for iface in (kernel.local_iface, kernel.public_iface):
        if iface is not None:
            _iface_gauges(registry, prefix, iface)

    # -- netfilter capture buffers (oskern.netfilter) ----------------------
    # The capture service is installed lazily by the first inbound
    # migration, so resolve it at *sample* time, not install time.
    def capture_queued() -> float:
        svc = host.daemons.get("capture")
        if svc is None:
            return 0.0
        return float(sum(svc.queue_length(k) for k in svc.active_keys()))

    registry.gauge(f"{prefix}.netfilter.capture_queued", fn=capture_queued)
    registry.gauge(
        f"{prefix}.netfilter.hooks",
        fn=lambda: sum(len(kernel.netfilter.hooks(c)) for c in kernel.netfilter.CHAINS),
    )

    # -- conductor peer database (middleware) ------------------------------
    def peer_staleness() -> float:
        cond = host.daemons.get("conductor")
        if cond is None:
            return 0.0
        peers = cond.peers.peers()
        if not peers:
            return 0.0
        return host.env.now - min(p.timestamp for p in peers)

    registry.gauge(f"{prefix}.cond.peer_staleness_s", fn=peer_staleness)

    return sorted(set(registry.names()) - before)


def install_node_samplers(cluster: "Cluster") -> list[str]:
    """Register ``node.<ip>.*`` samplers for every host of a cluster
    (server nodes and the database host).  Returns the registered metric
    names; a no-op (empty list) while metrics are disabled."""
    if cluster.env.metrics is None:
        return []
    names: list[str] = []
    hosts = list(cluster.nodes)
    if cluster.db is not None:
        hosts.append(cluster.db)
    for host in hosts:
        names.extend(install_host_sampler(host))
    return names
