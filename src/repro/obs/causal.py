"""Causal-graph assembly and critical-path analysis of migration traces.

The paper's argument is causal — freeze time is short *because* precopy
moved the pages first, degradation is low *because* demand fetches
overlap execution — and this module turns a flat trace into that story:

- :func:`build_causal_graph` assembles the per-session **causal DAG**
  from the explicit ``parent`` / ``caused_by`` annotations a causal
  tracer records (``Tracer(causal=True)``), plus *structural* edges
  inferred from the protocol itself (freeze transfer → restore, page
  fault → demand serve, precopy round → stage), so default traces
  without causal annotations still produce a useful graph;
- :func:`downtime_critical_path` decomposes a session's downtime window
  (``mig.freeze.enter`` .. ``migd.thaw``) into an exhaustive,
  non-overlapping sequence of labelled segments — signal delivery,
  thread barrier, state serialization, network transfer, destination
  restore — whose durations **sum to exactly the measured downtime**,
  with percentage attribution per segment;
- :func:`total_critical_path` does the same for the whole migration
  using the session state machine's phase windows;
- :func:`degradation_breakdown` collects the service-degradation
  contributors beyond downtime (post-copy fault stalls, auto-converge
  throttle);
- :func:`render_critical_path` renders it all as fixed-width text (the
  ``repro-trace --critical-path`` report).

Methodology (see docs/observability.md): the downtime window is cut at
every span boundary inside it into *elementary segments*; each segment
is attributed to the most specific span covering it (restore beats
transfer beats barrier), and uncovered gaps get positional labels
(``freeze.signal`` before the barrier, ``freeze.serialize`` between
barrier and transfer, ``freeze.other`` elsewhere).  Because the
segments partition the window, attribution always sums to 100% of the
measured downtime — on any trace, causal or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .export import MigrationSlice, migration_slices
from .tracer import Span, TraceEvent, cause_id

__all__ = [
    "CausalNode",
    "CausalEdge",
    "CausalGraph",
    "build_causal_graph",
    "PathSegment",
    "CriticalPath",
    "downtime_critical_path",
    "total_critical_path",
    "degradation_breakdown",
    "render_critical_path",
]


# ---------------------------------------------------------------------------
# The causal DAG
# ---------------------------------------------------------------------------
@dataclass
class CausalNode:
    """One vertex: a span or a causally-referenced point event."""

    cid: int
    name: str
    time: float
    #: ``"span"`` or ``"event"``.
    kind: str
    session: Optional[str] = None
    #: End time for spans (``None`` = unfinished); ``None`` for events.
    end: Optional[float] = None
    #: The originating record (begin edge for spans), for consumers that
    #: need fields beyond the causal skeleton (e.g. the Perfetto flows).
    event: Optional[TraceEvent] = None


@dataclass(frozen=True)
class CausalEdge:
    """A directed cause → effect edge.

    ``kind`` is ``"caused_by"`` / ``"parent"`` for explicit annotations
    (causal tracer) and ``"inferred"`` for structural edges derived from
    the protocol on any trace.
    """

    src: int
    dst: int
    kind: str


@dataclass
class CausalGraph:
    """The assembled DAG: nodes by causal id, edges cause → effect."""

    nodes: dict[int, CausalNode] = field(default_factory=dict)
    edges: list[CausalEdge] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def effects_of(self, cid: int) -> list[CausalNode]:
        """Direct effects of node ``cid`` (outgoing edges)."""
        return [
            self.nodes[e.dst]
            for e in self.edges
            if e.src == cid and e.dst in self.nodes
        ]

    def causes_of(self, cid: int) -> list[CausalNode]:
        """Direct causes of node ``cid`` (incoming edges)."""
        return [
            self.nodes[e.src]
            for e in self.edges
            if e.dst == cid and e.src in self.nodes
        ]

    def chain(self, cid: int) -> list[CausalNode]:
        """The cause chain ending at ``cid`` (root first): walk incoming
        ``caused_by``/``inferred`` edges backwards, earliest cause first
        when several converge.  Cycle-safe (visited set)."""
        out: list[CausalNode] = []
        seen: set[int] = set()
        cur: Optional[int] = cid
        while cur is not None and cur in self.nodes and cur not in seen:
            seen.add(cur)
            out.append(self.nodes[cur])
            causes = [
                e.src
                for e in self.edges
                if e.dst == cur and e.kind != "parent" and e.src in self.nodes
            ]
            causes.sort(key=lambda c: self.nodes[c].time)
            cur = causes[0] if causes else None
        out.reverse()
        return out


def _node_from_event(ev: TraceEvent, cid: int) -> CausalNode:
    return CausalNode(
        cid=cid,
        name=ev.name,
        time=ev.time,
        kind="span" if ev.span_id is not None else "event",
        session=ev.fields.get("session"),
        event=ev,
    )


def build_causal_graph(
    events: list[TraceEvent], session: Optional[str] = None
) -> CausalGraph:
    """Assemble the causal DAG of a trace (optionally one session's).

    Explicit ``parent``/``caused_by`` annotations become edges directly.
    On top of (or in the absence of) those, *structural* edges are
    inferred per session from the protocol's known shape:

    - ``mig.precopy.round`` span → the next ``migd.stage`` (phase
      ``round``) record;
    - ``mig.freeze.transfer`` span → the ``migd.restore`` span;
    - ``migd.restore`` span → ``migd.thaw``;
    - ``pagefaultd.fault`` → the next ``migd.postcopy.serve`` record.

    Point events without a causal ``ref`` get synthetic negative ids
    (deterministic: allocation order in the stream), so inferred edges
    work on default traces where only spans carry ids.
    """
    graph = CausalGraph()
    synth = 0

    def ensure_node(ev: TraceEvent) -> int:
        nonlocal synth
        cid = cause_id(ev)
        if cid is None:
            synth -= 1
            cid = synth
        if cid not in graph.nodes:
            graph.nodes[cid] = _node_from_event(ev, cid)
        return cid

    if session is not None:
        events = [
            ev
            for ev in events
            if ev.fields.get("session") == session
            or (ev.kind == "end" and not ev.fields.get("session"))
        ]

    # Pass 1: explicit nodes and edges; remember per-session protocol
    # records for pass 2's structural inference.
    per_session: dict[Optional[str], dict[str, list[tuple[int, TraceEvent]]]] = {}
    span_ends: dict[int, float] = {}
    for ev in events:
        if ev.kind == "end" and ev.span_id is not None:
            span_ends[ev.span_id] = ev.time
            continue
        interesting = (
            ev.span_id is not None
            or ev.ref is not None
            or ev.caused_by is not None
            or ev.name in _STRUCTURAL_NAMES
        )
        if not interesting:
            continue
        cid = ensure_node(ev)
        if ev.caused_by is not None:
            graph.edges.append(CausalEdge(ev.caused_by, cid, "caused_by"))
        if ev.parent is not None:
            graph.edges.append(CausalEdge(ev.parent, cid, "parent"))
        if ev.name in _STRUCTURAL_NAMES:
            sess = per_session.setdefault(ev.fields.get("session"), {})
            sess.setdefault(ev.name, []).append((cid, ev))
    for cid, node in graph.nodes.items():
        if node.kind == "span" and cid in span_ends:
            node.end = span_ends[cid]

    # Pass 2: structural edges (skip pairs already connected explicitly).
    existing = {(e.src, e.dst) for e in graph.edges}

    def infer(src_cid: int, dst_cid: int) -> None:
        if (src_cid, dst_cid) not in existing:
            graph.edges.append(CausalEdge(src_cid, dst_cid, "inferred"))
            existing.add((src_cid, dst_cid))

    for sess_records in per_session.values():
        _infer_next(sess_records, "mig.precopy.round", "migd.stage", infer)
        _infer_next(sess_records, "mig.freeze.transfer", "migd.restore", infer)
        _infer_next(sess_records, "migd.restore", "migd.thaw", infer)
        _infer_next(sess_records, "pagefaultd.fault", "migd.postcopy.serve", infer)
    return graph


#: Records that participate in structural (inferred) edges.
_STRUCTURAL_NAMES = frozenset(
    {
        "mig.start",
        "mig.precopy.round",
        "migd.stage",
        "mig.freeze.enter",
        "mig.freeze.transfer",
        "migd.restore",
        "migd.thaw",
        "pagefaultd.fault",
        "migd.postcopy.serve",
        "mig.complete",
        "mig.abort",
    }
)


def _infer_next(records: dict, src_name: str, dst_name: str, infer) -> None:
    """Pair each ``src_name`` record with the first not-yet-paired
    ``dst_name`` record at or after it (protocol order: one effect per
    cause, FIFO)."""
    sources = records.get(src_name, [])
    dests = records.get(dst_name, [])
    di = 0
    for src_cid, src_ev in sources:
        while di < len(dests) and dests[di][1].time < src_ev.time:
            di += 1
        if di >= len(dests):
            break
        infer(src_cid, dests[di][0])
        di += 1


# ---------------------------------------------------------------------------
# Critical paths
# ---------------------------------------------------------------------------
@dataclass
class PathSegment:
    """One labelled, non-overlapping slice of a critical-path window."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """An exhaustive decomposition of a time window into segments.

    The segments partition ``window`` exactly — no gaps, no overlap —
    so :meth:`attribution` always sums to 100% of the window.
    """

    kind: str
    session: Optional[str]
    window: tuple[float, float]
    segments: list[PathSegment] = field(default_factory=list)
    #: Set when the window's closing record is missing (e.g. the trace
    #: ends mid-migration): the window was clamped to the last record.
    truncated: bool = False

    @property
    def total(self) -> float:
        return self.window[1] - self.window[0]

    def attribution(self) -> list[tuple[str, float, float]]:
        """``(label, seconds, percent)`` per label, largest first."""
        sums: dict[str, float] = {}
        for seg in self.segments:
            sums[seg.label] = sums.get(seg.label, 0.0) + seg.duration
        total = self.total
        return sorted(
            (
                (label, secs, (100.0 * secs / total) if total > 0 else 0.0)
                for label, secs in sums.items()
            ),
            key=lambda row: -row[1],
        )


#: (span name, segment label, priority) — higher priority wins where
#: spans overlap inside the downtime window.
_DOWNTIME_SPANS = [
    ("migd.restore", "restore", 3),
    ("mig.freeze.transfer", "network.transfer", 2),
    ("mig.freeze.barrier", "freeze.barrier", 2),
]


def _clip(
    spans: list[Span], t0: float, t1: float, label: str, priority: int
) -> list[tuple[float, float, str, int]]:
    out = []
    for span in spans:
        end = span.end if span.end is not None else t1
        start = max(span.start, t0)
        end = min(end, t1)
        if end > start:
            out.append((start, end, label, priority))
    return out


def downtime_critical_path(sl: MigrationSlice) -> Optional[CriticalPath]:
    """Decompose one session's downtime into labelled segments.

    The window is ``mig.freeze.enter`` .. ``migd.thaw`` (the measured
    downtime).  Returns ``None`` when the slice never froze; a slice
    that froze but never thawed (abort, truncated trace) is analysed up
    to its last record with ``truncated=True``.
    """
    freeze = [e for e in sl.events if e.name == "mig.freeze.enter"]
    if not freeze:
        return None
    t0 = freeze[0].time
    thaw = [e for e in sl.events if e.name == "migd.thaw"]
    truncated = not thaw
    t1 = thaw[0].time if thaw else max(e.time for e in sl.events)
    if t1 <= t0:
        return None
    spans = sl.spans()
    intervals: list[tuple[float, float, str, int]] = []
    for name, label, priority in _DOWNTIME_SPANS:
        intervals.extend(
            _clip([s for s in spans if s.name == name], t0, t1, label, priority)
        )

    barrier_start = min(
        (s.start for s in spans if s.name == "mig.freeze.barrier"),
        default=None,
    )
    transfer_start = min(
        (s.start for s in spans if s.name == "mig.freeze.transfer"),
        default=None,
    )

    def filler(mid: float) -> str:
        if barrier_start is not None and mid < barrier_start:
            return "freeze.signal"
        if transfer_start is not None and mid < transfer_start:
            return "freeze.serialize"
        if transfer_start is None and barrier_start is not None:
            # No transfer span (truncated/aborted mid-freeze): everything
            # after the barrier is serialization-side work.
            return "freeze.serialize"
        return "freeze.other"

    segments = _sweep(intervals, t0, t1, filler)
    return CriticalPath(
        kind="downtime",
        session=sl.session,
        window=(t0, t1),
        segments=segments,
        truncated=truncated,
    )


def _sweep(
    intervals: list[tuple[float, float, str, int]],
    t0: float,
    t1: float,
    filler,
) -> list[PathSegment]:
    """Cut ``[t0, t1]`` at every interval boundary; label each
    elementary segment with the highest-priority covering interval (ties
    break to the later-starting, i.e. more specific, one), or with
    ``filler(midpoint)`` when uncovered; merge equal-label neighbours."""
    bounds = {t0, t1}
    for start, end, _, _ in intervals:
        bounds.add(start)
        bounds.add(end)
    cuts = sorted(b for b in bounds if t0 <= b <= t1)
    segments: list[PathSegment] = []
    for a, b in zip(cuts, cuts[1:]):
        mid = (a + b) / 2.0
        covering = [iv for iv in intervals if iv[0] <= mid < iv[1]]
        if covering:
            covering.sort(key=lambda iv: (iv[3], iv[0]))
            label = covering[-1][2]
        else:
            label = filler(mid)
        if segments and segments[-1].label == label:
            segments[-1].end = b
        else:
            segments.append(PathSegment(label, a, b))
    return segments


#: session.state ``to`` values, in lifecycle order, mapped to phase labels.
_PHASE_LABELS = {
    "negotiating": "negotiate",
    "precopy": "precopy",
    "freeze": "freeze",
    "restoring": "restore",
    "postcopy": "postcopy",
}


def total_critical_path(sl: MigrationSlice) -> Optional[CriticalPath]:
    """Decompose the whole migration (``mig.start`` .. terminal) by the
    session state machine's phase windows.  Works on any trace (the
    ``session.state`` events are always recorded)."""
    t0 = sl.start.time
    if sl.terminal is not None:
        t1 = sl.terminal.time
        truncated = False
    else:
        t1 = max(e.time for e in sl.events)
        truncated = True
    if t1 <= t0:
        return None
    transitions = [e for e in sl.events if e.name == "session.state"]
    segments: list[PathSegment] = []
    cursor = t0
    label = "negotiate"
    for ev in transitions:
        t = min(max(ev.time, t0), t1)
        if t > cursor:
            segments.append(PathSegment(label, cursor, t))
            cursor = t
        to = str(ev.fields.get("to", ""))
        label = _PHASE_LABELS.get(to, to or "?")
        if to in ("done", "aborted"):
            break
    if cursor < t1:
        segments.append(PathSegment(label, cursor, t1))
    return CriticalPath(
        kind="total",
        session=sl.session,
        window=(t0, t1),
        segments=segments,
        truncated=truncated,
    )


def degradation_breakdown(sl: MigrationSlice) -> dict[str, float]:
    """Service-degradation seconds by contributor for one session.

    - ``downtime`` — the freeze window (``mig.freeze.enter``..``migd.thaw``);
    - ``postcopy.fault_wait`` — cumulative post-copy demand-fetch stall
      (from the ``migd.postcopy.done`` record);
    - ``autoconverge.throttled`` — CPU-share-seconds taken away by the
      auto-converge throttle (from ``mig.autoconverge.release``).
    """
    out: dict[str, float] = {}
    freeze = [e for e in sl.events if e.name == "mig.freeze.enter"]
    thaw = [e for e in sl.events if e.name == "migd.thaw"]
    if freeze and thaw:
        out["downtime"] = thaw[0].time - freeze[0].time
    for ev in sl.events:
        if ev.name == "migd.postcopy.done" and "fault_wait" in ev.fields:
            out["postcopy.fault_wait"] = (
                out.get("postcopy.fault_wait", 0.0)
                + float(ev.fields["fault_wait"])
            )
        elif ev.name == "mig.autoconverge.release":
            out["autoconverge.throttled"] = float(
                ev.fields.get("throttled_seconds", 0.0)
            )
    return out


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_critical_path(
    events: list[TraceEvent],
    session: Optional[str] = None,
    pid: Optional[int] = None,
) -> str:
    """The ``repro-trace --critical-path`` report: per session, the
    downtime decomposition, the total-time phase attribution, and the
    degradation contributors."""
    from ..analysis.report import render_table

    slices = migration_slices(events)
    if session is not None:
        slices = [s for s in slices if s.session == session]
    if pid is not None:
        slices = [s for s in slices if s.pid == pid]
    if not slices:
        return "(no migrations in trace)"
    blocks: list[str] = []
    for sl in slices:
        ident = sl.session if sl.session is not None else f"pid={sl.pid}"
        down = downtime_critical_path(sl)
        if down is not None:
            rows = [
                [
                    seg.label,
                    f"{(seg.start - down.window[0]) * 1e3:+.3f}",
                    f"{seg.duration * 1e3:.3f}",
                    f"{100.0 * seg.duration / down.total:.1f}%",
                ]
                for seg in down.segments
            ]
            title = (
                f"downtime critical path — {ident} "
                f"({down.total * 1e3:.3f} ms"
                + (", truncated" if down.truncated else "")
                + ")"
            )
            blocks.append(
                render_table(
                    ["segment", "t+ (ms)", "duration (ms)", "share"],
                    rows,
                    title=title,
                )
            )
        else:
            blocks.append(f"(session {ident}: no freeze window in trace)")
        total = total_critical_path(sl)
        if total is not None:
            rows = [
                [label, f"{secs:.6f}", f"{pct:.1f}%"]
                for label, secs, pct in total.attribution()
            ]
            blocks.append(
                render_table(
                    ["phase", "seconds", "share"],
                    rows,
                    title=(
                        f"total-time attribution — {ident} "
                        f"({total.total:.6f} s"
                        + (", truncated" if total.truncated else "")
                        + ")"
                    ),
                )
            )
        degr = degradation_breakdown(sl)
        if degr:
            rows = [
                [label, f"{secs * 1e3:.3f}"]
                for label, secs in sorted(degr.items(), key=lambda kv: -kv[1])
            ]
            blocks.append(
                render_table(
                    ["contributor", "ms"],
                    rows,
                    title=f"degradation contributors — {ident}",
                )
            )
    return "\n\n".join(blocks)
