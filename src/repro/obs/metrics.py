"""Counters and gauges, sampled into the existing time-series machinery.

The simulation already has one export path for evaluation data: the
:class:`~repro.des.TimeSeries` / :class:`~repro.des.SeriesBundle`
recorders behind Figures 5d-5f (and their CSV exporters).  The metrics
registry reuses it: daemons register cheap :class:`Counter` and
:class:`Gauge` objects, and a periodic sampler snapshots every metric
into a ``SeriesBundle`` so migration-layer and middleware-layer metrics
come out of the same pipe.

Gauges may wrap a callable, so existing daemon attributes (e.g.
``MigrationDaemon.migrations_completed``) become metrics without any
hot-path bookkeeping.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Counter", "Gauge", "MetricsRegistry", "install_metrics_sampler"]


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value: either set explicitly or read via ``fn``."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def get(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class MetricsRegistry:
    """Named counters/gauges with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    # -- registration --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            if name in self._gauges:
                raise ValueError(f"{name!r} is already a gauge")
            c = Counter(name)
            self._counters[name] = c
        return c

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            g = Gauge(name, fn)
            self._gauges[name] = g
        elif fn is not None:
            g.fn = fn  # rebind: a daemon re-registering after restart
        return g

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges])

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges

    # -- sampling ------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Current value of every metric."""
        out = {name: c.get() for name, c in self._counters.items()}
        out.update({name: g.get() for name, g in self._gauges.items()})
        return out

    def sample_into(self, bundle, time: float) -> None:
        """Record every metric into a :class:`~repro.des.SeriesBundle`
        at ``time`` — the shared export path with the Fig. 5 series."""
        for name, value in sorted(self.snapshot().items()):
            bundle.record(name, time, value)


def install_metrics_sampler(env, registry: MetricsRegistry, bundle, interval: float):
    """Spawn a DES process sampling ``registry`` into ``bundle`` every
    ``interval`` simulated seconds.  Returns the process."""
    if interval <= 0:
        raise ValueError("interval must be positive")

    def loop():
        while True:
            registry.sample_into(bundle, env.now)
            yield env.timeout(interval)

    return env.process(loop(), name="metrics-sampler")
