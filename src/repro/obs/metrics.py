"""Counters, gauges and histograms, sampled into the time-series machinery.

The simulation already has one export path for evaluation data: the
:class:`~repro.des.TimeSeries` / :class:`~repro.des.SeriesBundle`
recorders behind Figures 5d-5f (and their CSV exporters).  The metrics
registry reuses it: daemons register cheap :class:`Counter`,
:class:`Gauge` and :class:`Histogram` objects, and a periodic sampler
snapshots every metric into a ``SeriesBundle`` so migration-layer and
middleware-layer metrics come out of the same pipe.

Gauges may wrap a callable, so existing daemon attributes (e.g.
``MigrationDaemon.migrations_completed``) become metrics without any
hot-path bookkeeping.

Histograms keep the *distributions* the paper's evaluation is made of
(freeze time vs connection count, per-packet delay, per-socket subtract
bytes): fixed log-scale buckets — 20 per decade, so any quantile is
exact to within ~6% — with exact count/sum/min/max on the side.

All three kinds share one namespace per registry: requesting an
existing name as a different kind raises ``ValueError`` instead of
silently handing back the wrong object.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install_metrics_sampler",
]


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value: either set explicitly or read via ``fn``."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def get(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


#: 20 buckets per decade: bucket i covers [G**i, G**(i+1)), G ~ 1.122.
_LOG_GROWTH = math.log(10.0) / 20.0
_INV_LOG_GROWTH = 1.0 / _LOG_GROWTH


class Histogram:
    """Log-scale bucketed distribution with exact count/sum/min/max.

    Buckets are fixed and geometric (:attr:`GROWTH` per bucket, 20 per
    decade), sparse-stored, covering the whole positive float range —
    no configuration, so histograms of seconds and histograms of bytes
    use the same resolution.  Non-positive observations land in a
    dedicated underflow bucket (quantiles report them as :meth:`min`).

    Quantile error is bounded by the bucket width: the reported value is
    the geometric midpoint of the selected bucket, clamped to the exact
    observed [min, max], so ``quantile(q)`` is within a factor
    ``sqrt(GROWTH)`` of an exact order statistic.
    """

    __slots__ = ("name", "_counts", "_count", "_sum", "_min", "_max", "_underflow")

    GROWTH = math.exp(_LOG_GROWTH)

    def __init__(self, name: str) -> None:
        self.name = name
        #: bucket index -> observation count (sparse).
        self._counts: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._underflow = 0

    # -- recording -----------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._underflow += 1
            return
        # The epsilon keeps exact bucket boundaries (value == G**i) from
        # rounding down a bucket on float error.
        idx = math.floor(math.log(value) * _INV_LOG_GROWTH + 1e-9)
        self._counts[idx] = self._counts.get(idx, 0) + 1

    # -- queries -------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        if self._count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        return self._sum / self._count

    def min(self) -> float:
        if self._count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        return self._min

    def max(self) -> float:
        if self._count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        return self._max

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), exact to bucket resolution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self._count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        target = max(1, math.ceil(q * self._count))
        seen = self._underflow
        if seen >= target:
            return self._min
        for idx in sorted(self._counts):
            seen += self._counts[idx]
            if seen >= target:
                mid = math.exp((idx + 0.5) * _LOG_GROWTH)
                return min(max(mid, self._min), self._max)
        return self._max  # pragma: no cover - counts always sum to _count

    def summary(self) -> dict[str, float]:
        """The standard summary block: count/sum/mean/min/max/p50/p95/p99."""
        if self._count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean(),
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def flatten(self) -> dict[str, float]:
        """Summary keyed as ``<name>.count``, ``<name>.p99``, ... — the
        form histograms take inside a registry snapshot / SeriesBundle."""
        return {f"{self.name}.{k}": v for k, v in self.summary().items()}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics.

    All kinds share one namespace: re-requesting a name returns the
    existing object for the same kind and raises a ``ValueError``
    naming both kinds for a mismatch (a counter can never silently
    come back as a gauge).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- registration --------------------------------------------------------
    def _lookup(self, name: str, want: type) -> Optional[Metric]:
        m = self._metrics.get(name)
        if m is not None and not isinstance(m, want):
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{type(m).__name__.lower()}; requested a {want.__name__.lower()}"
            )
        return m

    def counter(self, name: str) -> Counter:
        c = self._lookup(name, Counter)
        if c is None:
            c = Counter(name)
            self._metrics[name] = c
        return c  # type: ignore[return-value]

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self._lookup(name, Gauge)
        if g is None:
            g = Gauge(name, fn)
            self._metrics[name] = g
        elif fn is not None:
            g.fn = fn  # rebind: a daemon re-registering after restart
        return g  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        h = self._lookup(name, Histogram)
        if h is None:
            h = Histogram(name)
            self._metrics[name] = h
        return h  # type: ignore[return-value]

    def kind_of(self, name: str) -> Optional[str]:
        """``"counter"`` / ``"gauge"`` / ``"histogram"``, or ``None``."""
        m = self._metrics.get(name)
        return None if m is None else type(m).__name__.lower()

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def histograms(self) -> dict[str, Histogram]:
        """All registered histograms by name."""
        return {n: m for n, m in self._metrics.items() if isinstance(m, Histogram)}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- sampling ------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Current value of every metric.  Histograms flatten into
        ``<name>.count`` / ``.p50`` / ``.p95`` / ``.p99`` / ... keys."""
        out: dict[str, float] = {}
        for name, m in self._metrics.items():
            if isinstance(m, Histogram):
                out.update(m.flatten())
            else:
                out[name] = m.get()
        return out

    def sample_into(self, bundle, time: float) -> None:
        """Record every metric into a :class:`~repro.des.SeriesBundle`
        at ``time`` — the shared export path with the Fig. 5 series."""
        for name, value in sorted(self.snapshot().items()):
            bundle.record(name, time, value)


def install_metrics_sampler(env, registry: MetricsRegistry, bundle, interval: float):
    """Spawn a DES process sampling ``registry`` into ``bundle`` every
    ``interval`` simulated seconds.  Returns the process.

    The loop samples at most once per simulated instant, so a sampler
    resumed across ``env.run()`` calls (or racing another recorder at
    t=0) never writes duplicate-timestamp rows; when a run ends
    mid-interval the pending timeout simply never fires — no partial
    row is recorded.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")

    def loop():
        last: Optional[float] = None
        while True:
            if env.now != last:
                registry.sample_into(bundle, env.now)
                last = env.now
            yield env.timeout(interval)

    return env.process(loop(), name="metrics-sampler")
