"""In-kernel TCP/IP stack (substrate): sockets, queues, lookup tables."""

from .buffers import OutOfOrderQueue, ReceiveQueue, SKBuff, WriteQueue
from .dstcache import DstCacheEntry
from .hashtables import SocketTables
from .ip import IPLayer
from .seq import seq_add, seq_between, seq_geq, seq_gt, seq_leq, seq_lt, seq_sub
from .stack import NetworkStack
from .tcp import EOF, MSS, TCPSocket, TCPState
from .udp import UDPSocket

__all__ = [
    "SKBuff",
    "WriteQueue",
    "ReceiveQueue",
    "OutOfOrderQueue",
    "DstCacheEntry",
    "SocketTables",
    "IPLayer",
    "NetworkStack",
    "TCPSocket",
    "TCPState",
    "UDPSocket",
    "EOF",
    "MSS",
    "seq_add",
    "seq_sub",
    "seq_lt",
    "seq_leq",
    "seq_gt",
    "seq_geq",
    "seq_between",
]
