"""UDP sockets.

Migrating UDP sockets is considerably easier than TCP (Section V-C.2):
besides the main socket structure, only the receive-queue buffers are
tracked and transferred — and bound server sockets must be unhashed
before migration and rehashed on the destination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..des import Event
from ..net import Endpoint, IPAddr, PROTO_UDP, Packet

from .buffers import ReceiveQueue, SKBuff
from .dstcache import DstCacheEntry

if TYPE_CHECKING:  # pragma: no cover
    from .stack import NetworkStack

__all__ = ["UDPSocket"]


class UDPSocket:
    """A connectionless datagram socket."""

    def __init__(self, stack: "NetworkStack", proc: Any = None) -> None:
        self.stack = stack
        self.env = stack.env
        self.proc = proc
        self.local: Optional[Endpoint] = None
        #: Default destination set by connect() (optional for UDP).
        self.remote: Optional[Endpoint] = None
        self.receive_queue = ReceiveQueue(self.env)
        self.dst_entry: Optional[DstCacheEntry] = None
        self.hashed = False
        self.migrating = False
        #: See TCPSocket.orig_local_ip — set by in-cluster migration.
        self.orig_local_ip: Optional[IPAddr] = None
        self.datagrams_sent = 0
        self.datagrams_received = 0

    @property
    def kernel(self):
        return self.stack.kernel

    def bind(self, port: int, ip: Optional[IPAddr] = None) -> None:
        if self.hashed:
            raise RuntimeError("socket already bound")
        if ip is None:
            ip = self.stack.default_ip()
        self.local = Endpoint(ip, port)
        self.stack.tables.udp_insert(ip, port, self)
        self.hashed = True

    def connect(self, remote: Endpoint) -> None:
        """Set the default destination (no handshake for UDP)."""
        self.remote = remote
        self.dst_entry = DstCacheEntry(remote.ip)
        if self.local is None:
            iface = self.kernel.route(remote.ip)
            port = self.stack.alloc_ephemeral_port()
            self.local = Endpoint(iface.ip, port)
            self.stack.tables.udp_insert(iface.ip, port, self)
            self.hashed = True

    def sendto(self, payload: Any, size: int, dest: Endpoint) -> None:
        if self.local is None:
            iface = self.kernel.route(dest.ip)
            port = self.stack.alloc_ephemeral_port()
            self.local = Endpoint(iface.ip, port)
            self.stack.tables.udp_insert(iface.ip, port, self)
            self.hashed = True
        if size <= 0:
            raise ValueError("size must be positive")
        pkt = Packet(
            src_ip=self.local.ip,
            dst_ip=dest.ip,
            proto=PROTO_UDP,
            sport=self.local.port,
            dport=dest.port,
            payload_size=size,
            payload=payload,
            sent_at=self.env.now,
        )
        if self.dst_entry is not None and dest == self.remote:
            pkt.dst_cache_ip = self.dst_entry.ip
        pkt.seal()
        self.stack.ip_output(pkt)
        self.datagrams_sent += 1

    def send(self, payload: Any, size: int) -> None:
        if self.remote is None:
            raise RuntimeError("send on unconnected UDP socket")
        self.sendto(payload, size, self.remote)

    def recv(self) -> Event:
        """Event succeeding with the next datagram as an SKBuff
        (``skb.src`` carries the sender endpoint, recvfrom-style)."""
        return self.receive_queue.get()

    def datagram_arrives(self, pkt: Packet) -> None:
        """Entry from the IP layer."""
        skb = SKBuff(
            seq=0,
            size=pkt.payload_size,
            payload=pkt.payload,
            src=Endpoint(pkt.src_ip, pkt.sport),
            ts_jiffies=self.kernel.jiffies.jiffies,
        )
        self.receive_queue.push(skb)
        self.datagrams_received += 1

    def force_userspace(self) -> None:
        """Checkpoint-signal semantics; UDP has no user lock or prequeue,
        so this is a no-op (kept for interface parity with TCP)."""

    def close(self) -> None:
        if self.hashed:
            assert self.local is not None
            self.stack.tables.udp_remove(self.local.ip, self.local.port)
            self.hashed = False

    def __repr__(self) -> str:
        return f"<UDPSocket {self.local} -> {self.remote}>"
