"""Socket lookup tables: ``ehash``, ``bhash`` and the UDP port table.

Migrating a TCP socket starts by *unhashing* it from both the
established-connections table (``ehash``) and the bound-ports table
(``bhash``); restoring it on the destination ends with *rehashing* into
both (Section V-C.1).  UDP server sockets likewise must be unhashed and
rehashed (Section V-C.2).
"""

from __future__ import annotations

from typing import Any, Optional

from ..net import FlowKey, IPAddr

__all__ = ["SocketTables"]


class SocketTables:
    """Per-node socket lookup state."""

    def __init__(self) -> None:
        #: Established TCP connections: FlowKey -> TCPSocket.
        self.ehash: dict[FlowKey, Any] = {}
        #: Bound/listening TCP sockets: (ip, port) -> TCPSocket.
        self.bhash: dict[tuple[Optional[IPAddr], int], Any] = {}
        #: Bound UDP sockets: (ip, port) -> UDPSocket.
        self.udp_hash: dict[tuple[Optional[IPAddr], int], Any] = {}

    # -- TCP established ------------------------------------------------------
    def ehash_insert(self, key: FlowKey, sock: Any) -> None:
        if key in self.ehash:
            raise ValueError(f"ehash collision for {key}")
        self.ehash[key] = sock

    def ehash_remove(self, key: FlowKey) -> Any:
        try:
            return self.ehash.pop(key)
        except KeyError:
            raise ValueError(f"{key} not in ehash") from None

    def ehash_lookup(self, key: FlowKey) -> Optional[Any]:
        return self.ehash.get(key)

    # -- TCP bound/listening -----------------------------------------------------
    def bhash_insert(self, ip: Optional[IPAddr], port: int, sock: Any) -> None:
        key = (ip, port)
        if key in self.bhash:
            raise ValueError(f"port {port} already bound")
        self.bhash[key] = sock

    def bhash_remove(self, ip: Optional[IPAddr], port: int) -> Any:
        try:
            return self.bhash.pop((ip, port))
        except KeyError:
            raise ValueError(f"({ip}, {port}) not in bhash") from None

    def bhash_lookup(self, ip: Optional[IPAddr], port: int) -> Optional[Any]:
        """Exact (ip, port) first, then wildcard-IP bind."""
        sock = self.bhash.get((ip, port))
        if sock is None:
            sock = self.bhash.get((None, port))
        return sock

    # -- UDP -------------------------------------------------------------------
    def udp_insert(self, ip: Optional[IPAddr], port: int, sock: Any) -> None:
        key = (ip, port)
        if key in self.udp_hash:
            raise ValueError(f"udp port {port} already bound")
        self.udp_hash[key] = sock

    def udp_remove(self, ip: Optional[IPAddr], port: int) -> Any:
        try:
            return self.udp_hash.pop((ip, port))
        except KeyError:
            raise ValueError(f"({ip}, {port}) not in udp hash") from None

    def udp_lookup(self, ip: Optional[IPAddr], port: int) -> Optional[Any]:
        sock = self.udp_hash.get((ip, port))
        if sock is None:
            sock = self.udp_hash.get((None, port))
        return sock

    def counts(self) -> dict[str, int]:
        return {
            "ehash": len(self.ehash),
            "bhash": len(self.bhash),
            "udp": len(self.udp_hash),
        }
