"""A TCP implementation sufficient to migrate.

Implements what the paper's socket migration manipulates (Section V-C.1):

- established + listening states with real handshakes;
- sequence/ack bookkeeping with the write / receive / out-of-order
  queues, plus the backlog (packets arriving under a user lock) and the
  prequeue (fast-path receive while a reader is blocked);
- RTO-based retransmission with an armable/clearable timer;
- TCP timestamps derived from the node's *jiffies* clock through a
  per-socket ``ts_offset`` (the field migration adjusts), with a
  PAWS-style check on the receiver so that unadjusted timestamps cause
  observable breakage;
- a destination-cache entry inherited by every outgoing packet.

Congestion-control variables (cwnd/ssthresh) are tracked and migrated but
do not gate transmission; our workloads are interactivity-bound, not
bandwidth-bound, and the receive window provides the flow-control bound.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Optional

from ..des import Event
from ..net import Endpoint, FlowKey, IPAddr, PROTO_TCP, Packet, TCPFlags, TCPHeader
from .buffers import OutOfOrderQueue, ReceiveQueue, SKBuff, WriteQueue
from .dstcache import DstCacheEntry
from .seq import seq_add, seq_gt, seq_leq

if TYPE_CHECKING:  # pragma: no cover
    from .stack import NetworkStack

__all__ = ["TCPSocket", "TCPState", "EOF", "MSS"]

MSS = 1448
INITIAL_RTO = 0.2
MAX_RTO = 120.0
MIN_RTO = 0.2
DEFAULT_WINDOW = 65535

#: Sentinel payload marking end-of-stream in the receive queue.
EOF = object()

_iss_counter = itertools.count(10_000, 64_000)


class TCPState:
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"


class TCPSocket:
    """One TCP endpoint living in a node's network stack."""

    def __init__(self, stack: "NetworkStack", proc: Any = None) -> None:
        self.stack = stack
        self.env = stack.env
        #: Owning SimProcess (None for bare test sockets).
        self.proc = proc
        self.state = TCPState.CLOSED
        self.local: Optional[Endpoint] = None
        self.remote: Optional[Endpoint] = None

        # -- sequence state --
        self.iss = 0
        self.irs = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.snd_wnd = DEFAULT_WINDOW
        self.rcv_wnd = DEFAULT_WINDOW

        # -- congestion state (tracked + migrated, not gating) --
        self.cwnd = 10 * MSS
        self.ssthresh = 64 * 1024

        # -- RTT / RTO --
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rto_gen = 0
        self.rto_armed = False

        # -- timestamps --
        #: Added to node jiffies when stamping ts_val; migration adds the
        #: source/destination jiffies delta here to keep the apparent
        #: clock continuous (Section V-C.1).
        self.ts_offset = 0
        #: Most recent peer ts_val accepted (PAWS state).
        self.ts_recent = 0
        #: Node jiffies when ts_recent was updated (adjusted on migration).
        self.ts_recent_stamp = 0

        # -- queues --
        self.write_queue = WriteQueue()
        self.receive_queue = ReceiveQueue(self.env)
        self.ooo_queue = OutOfOrderQueue()
        self.backlog: list[Packet] = []
        self.prequeue: list[Packet] = []
        self.prequeue_enabled = True

        # -- locking --
        self.locked = False

        # -- listener state --
        self.accept_backlog = 0
        self._accept_queue: list[TCPSocket] = []
        self._accept_waiters: list[Event] = []
        #: Children still in SYN_RCVD (kernel-internal, no fd yet).
        self._embryos: list[TCPSocket] = []
        self.parent: Optional[TCPSocket] = None
        #: The flow's local IP as the *peer* first saw it; set when an
        #: in-cluster migration rewrites the local address, so later
        #: migrations can tell the peer's transd the right old_ip.
        self.orig_local_ip: Optional[IPAddr] = None

        # -- misc --
        self.dst_entry: Optional[DstCacheEntry] = None
        self._connect_event: Optional[Event] = None
        self.fin_received = False
        self.hashed = False
        #: True between unhash-on-source and rehash-on-destination.
        self.migrating = False

        # -- counters --
        self.retransmit_count = 0
        self.paws_drops = 0
        self.prequeue_hits = 0
        self.backlog_hits = 0
        self.rtt_samples = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------ utils
    @property
    def kernel(self):
        return self.stack.kernel

    @property
    def flow_key(self) -> FlowKey:
        if self.local is None or self.remote is None:
            raise RuntimeError("socket has no flow yet")
        return FlowKey(PROTO_TCP, self.local, self.remote)

    def current_ts_val(self) -> int:
        return self.kernel.jiffies.jiffies + self.ts_offset

    def _new_iss(self) -> int:
        return next(_iss_counter) % (1 << 32)

    # ------------------------------------------------------------- user calls
    def bind(self, port: int, ip: Optional[IPAddr] = None) -> None:
        if self.local is not None:
            raise RuntimeError("socket already bound")
        if ip is None:
            ip = self.stack.default_ip()
        self.local = Endpoint(ip, port)

    def listen(self, backlog: int = 128) -> None:
        if self.local is None:
            raise RuntimeError("listen before bind")
        if self.state != TCPState.CLOSED:
            raise RuntimeError(f"cannot listen in state {self.state}")
        self.state = TCPState.LISTEN
        self.accept_backlog = backlog
        self.stack.tables.bhash_insert(self.local.ip, self.local.port, self)

    def accept(self) -> Event:
        """Event succeeding with the next established child socket."""
        if self.state != TCPState.LISTEN:
            raise RuntimeError("accept on a non-listening socket")
        ev = Event(self.env)
        if self._accept_queue:
            self._hand_over(self._accept_queue.pop(0), ev)
        else:
            self._accept_waiters.append(ev)
        return ev

    def connect(self, remote: Endpoint) -> Event:
        """Active open; returned event succeeds when ESTABLISHED."""
        if self.state != TCPState.CLOSED:
            raise RuntimeError(f"cannot connect in state {self.state}")
        if self.local is None:
            iface = self.kernel.route(remote.ip)
            self.local = Endpoint(iface.ip, self.stack.alloc_ephemeral_port())
        self.remote = remote
        self.dst_entry = DstCacheEntry(remote.ip)
        self.iss = self._new_iss()
        self.snd_una = self.iss
        self.snd_nxt = seq_add(self.iss, 1)
        self.state = TCPState.SYN_SENT
        self.stack.tables.ehash_insert(self.flow_key, self)
        self.hashed = True
        self._connect_event = Event(self.env)
        self._send_ctl(TCPFlags(syn=True), seq=self.iss)
        self._arm_rto()
        return self._connect_event

    def send(self, payload: Any, size: int) -> None:
        """Queue and transmit application data."""
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise RuntimeError(f"send in state {self.state}")
        if size <= 0:
            raise ValueError("size must be positive")
        offset = 0
        while offset < size:
            chunk = min(MSS, size - offset)
            skb = SKBuff(
                seq=self.snd_nxt,
                size=chunk,
                payload=payload,
                # Raw node jiffies (like skb->tstamp): this is the field
                # migration shifts by the inter-node jiffies delta.
                ts_jiffies=self.kernel.jiffies.jiffies,
            )
            self.write_queue.append(skb)
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            self._send_data(skb)
            offset += chunk
        self.bytes_sent += size
        if not self.rto_armed:
            self._arm_rto()

    def recv(self) -> Event:
        """Event succeeding with the next in-order SKBuff (or EOF payload).

        A blocked reader marks the owning thread as in-syscall so the
        checkpoint signal semantics (abandon the call, return to
        userspace) are modelled faithfully.
        """
        return self.receive_queue.get()

    def close(self) -> None:
        if self.state == TCPState.LISTEN:
            self.state = TCPState.CLOSED
            self.stack.tables.bhash_remove(self.local.ip, self.local.port)
            return
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT_1
        elif self.state == TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        elif self.state == TCPState.CLOSED:
            return
        else:
            raise RuntimeError(f"close in state {self.state}")
        fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._send_ctl(TCPFlags(fin=True, ack=True), seq=fin_seq)
        if not self.rto_armed:
            self._arm_rto()

    # --------------------------------------------------------------- locking
    def lock_user(self) -> None:
        """Acquire the user socket lock (app is inside a socket syscall)."""
        if self.locked:
            raise RuntimeError("socket already locked")
        self.locked = True

    def unlock_user(self) -> None:
        """Release the lock and process the backlog queue."""
        if not self.locked:
            raise RuntimeError("socket not locked")
        self.locked = False
        self._process_backlog()

    def force_userspace(self) -> None:
        """Checkpoint-signal semantics: the owning thread abandons any
        in-flight socket syscall, which releases the lock (processing the
        backlog) and drains the prequeue — leaving both provably empty
        for the freeze phase (Section V-C.1)."""
        self._drain_prequeue()
        if self.locked:
            self.unlock_user()

    def _process_backlog(self) -> None:
        while self.backlog and not self.locked:
            self._tcp_rcv(self.backlog.pop(0))

    def _drain_prequeue(self, _arg=None) -> None:
        while self.prequeue:
            self._tcp_rcv(self.prequeue.pop(0))

    # --------------------------------------------------------------- receive
    def segment_arrives(self, pkt: Packet) -> None:
        """Entry from the IP layer (after netfilter LOCAL_IN)."""
        if self.locked:
            # Socket locked by the user: defer to the backlog queue.
            self.backlog.append(pkt)
            self.backlog_hits += 1
            return
        if (
            self.prequeue_enabled
            and self.state == TCPState.ESTABLISHED
            and self.receive_queue.has_waiting_reader
            and pkt.payload_size > 0
        ):
            # Fast path: queue to the prequeue, processed "in process
            # context" — modelled as an immediately-scheduled drain.
            self.prequeue.append(pkt)
            self.prequeue_hits += 1
            self.env.call_later(0.0, self._drain_prequeue)
            return
        self._tcp_rcv(pkt)

    def _tcp_rcv(self, pkt: Packet) -> None:
        hdr = pkt.tcp
        assert hdr is not None

        if self.state == TCPState.LISTEN:
            if hdr.flags.syn and not hdr.flags.ack:
                self._handle_syn(pkt)
            return

        if self.state == TCPState.SYN_SENT:
            if hdr.flags.syn and hdr.flags.ack and hdr.ack == seq_add(self.iss, 1):
                self.irs = hdr.seq
                self.rcv_nxt = seq_add(hdr.seq, 1)
                self.snd_una = hdr.ack
                self.snd_wnd = hdr.window
                self.ts_recent = hdr.ts_val
                self.ts_recent_stamp = self.current_ts_val()
                self.state = TCPState.ESTABLISHED
                self._stop_rto()
                self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)
                if self._connect_event is not None:
                    self._connect_event.succeed(self)
                    self._connect_event = None
            return

        # -- PAWS: reject segments whose timestamp regressed --------------
        if hdr.ts_val != 0 and self.ts_recent != 0 and hdr.ts_val < self.ts_recent:
            self.paws_drops += 1
            self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)
            return
        if hdr.ts_val != 0 and seq_leq(hdr.seq, self.rcv_nxt):
            if hdr.ts_val > self.ts_recent:
                self.ts_recent = hdr.ts_val
                self.ts_recent_stamp = self.current_ts_val()

        if self.state == TCPState.SYN_RCVD:
            if hdr.flags.ack and hdr.ack == seq_add(self.iss, 1):
                self.snd_una = hdr.ack
                self.snd_wnd = hdr.window
                self.state = TCPState.ESTABLISHED
                self._stop_rto()
                if self.parent is not None:
                    if self in self.parent._embryos:
                        self.parent._embryos.remove(self)
                    self.parent._deliver_child(self)
            # Fall through: the handshake ACK may carry data.

        if hdr.flags.ack:
            self._process_ack(hdr)

        if pkt.payload_size > 0:
            self._process_data(pkt)

        if hdr.flags.fin:
            self._process_fin(hdr)

    def _handle_syn(self, pkt: Packet) -> None:
        hdr = pkt.tcp
        assert hdr is not None
        child = TCPSocket(self.stack, proc=self.proc)
        child.parent = self
        child.local = Endpoint(pkt.dst_ip, pkt.dport)
        child.remote = Endpoint(pkt.src_ip, pkt.sport)
        key = child.flow_key
        if self.stack.tables.ehash_lookup(key) is not None:
            return  # duplicate SYN for an in-progress connection
        child.irs = hdr.seq
        child.rcv_nxt = seq_add(hdr.seq, 1)
        child.iss = child._new_iss()
        child.snd_una = child.iss
        child.snd_nxt = seq_add(child.iss, 1)
        child.snd_wnd = hdr.window
        child.ts_recent = hdr.ts_val
        child.ts_recent_stamp = child.current_ts_val()
        child.dst_entry = DstCacheEntry(child.remote.ip)
        child.state = TCPState.SYN_RCVD
        self._embryos.append(child)
        self.stack.tables.ehash_insert(key, child)
        child.hashed = True
        child._send_ctl(TCPFlags(syn=True, ack=True), seq=child.iss)
        child._arm_rto()

    def _deliver_child(self, child: "TCPSocket") -> None:
        if self._accept_waiters:
            self._hand_over(child, self._accept_waiters.pop(0))
        else:
            self._accept_queue.append(child)

    def _hand_over(self, child: "TCPSocket", waiter: Event) -> None:
        """accept() returns: allocate the child's file descriptor."""
        if self.proc is not None:
            from ..oskern.fdtable import SocketFile

            self.proc.fdtable.install(SocketFile(socket=child))
        waiter.succeed(child)

    def _process_ack(self, hdr: TCPHeader) -> None:
        if seq_gt(hdr.ack, self.snd_una):
            acked = self.write_queue.ack_up_to(hdr.ack)
            self.snd_una = hdr.ack
            self.snd_wnd = hdr.window
            # RTT sample from the echoed timestamp.
            if hdr.ts_ecr != 0 and acked:
                rtt_j = self.current_ts_val() - hdr.ts_ecr
                if rtt_j >= 0:
                    self._rtt_sample(rtt_j / self.kernel.jiffies.hz)
            # Congestion window growth (tracked only).
            if self.cwnd < self.ssthresh:
                self.cwnd += MSS
            else:
                self.cwnd += max(1, MSS * MSS // self.cwnd)
            if len(self.write_queue) == 0:
                self._stop_rto()
                if self.state == TCPState.FIN_WAIT_1 and hdr.ack == self.snd_nxt:
                    self.state = TCPState.FIN_WAIT_2
                elif self.state == TCPState.LAST_ACK and hdr.ack == self.snd_nxt:
                    self._become_closed()
            else:
                self._arm_rto()
        # Even without new data acked, FIN ack handling:
        elif self.state == TCPState.FIN_WAIT_1 and hdr.ack == self.snd_nxt:
            self.state = TCPState.FIN_WAIT_2
            self._stop_rto()
        elif self.state == TCPState.LAST_ACK and hdr.ack == self.snd_nxt:
            self._become_closed()

    def _process_data(self, pkt: Packet) -> None:
        hdr = pkt.tcp
        assert hdr is not None
        skb = SKBuff(
            seq=hdr.seq,
            size=pkt.payload_size,
            payload=pkt.payload,
            src=Endpoint(pkt.src_ip, pkt.sport),
            ts_jiffies=self.kernel.jiffies.jiffies,
        )
        if hdr.seq == self.rcv_nxt:
            self.receive_queue.push(skb)
            self.rcv_nxt = skb.end_seq
            self.bytes_received += skb.size
            for run_skb in self.ooo_queue.pop_in_order(self.rcv_nxt):
                self.receive_queue.push(run_skb)
                self.rcv_nxt = run_skb.end_seq
                self.bytes_received += run_skb.size
            self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)
        elif seq_gt(hdr.seq, self.rcv_nxt):
            self.ooo_queue.insert(skb)
            self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)  # dup ack
        else:
            # Old or duplicate data: re-ack.
            self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)

    def _process_fin(self, hdr: TCPHeader) -> None:
        if self.fin_received:
            self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)  # re-ack dup FIN
            return
        if not seq_leq(hdr.seq, self.rcv_nxt):
            return  # FIN beyond a gap; wait for retransmission
        self.fin_received = True
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self.receive_queue.push(SKBuff(seq=self.rcv_nxt, size=0, payload=EOF))
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state == TCPState.FIN_WAIT_2:
            self._become_closed()
        elif self.state == TCPState.FIN_WAIT_1:
            self.state = TCPState.CLOSE_WAIT  # simultaneous close simplified
        self._send_ctl(TCPFlags(ack=True), seq=self.snd_nxt)

    def _become_closed(self) -> None:
        self.state = TCPState.CLOSED
        self._stop_rto()
        if self.hashed:
            self.stack.tables.ehash_remove(self.flow_key)
            self.hashed = False

    # ---------------------------------------------------------------- RTT/RTO
    def _rtt_sample(self, rtt: float) -> None:
        self.rtt_samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4 * self.rttvar))

    def _arm_rto(self) -> None:
        self._rto_gen += 1
        self.rto_armed = True
        # One Deferred per (re)arm instead of a Timeout + closure; the
        # generation check in _rto_fire already absorbs stale firings.
        self.env.call_later(self.rto, self._rto_fire, self._rto_gen)

    def _stop_rto(self) -> None:
        """Clear the retransmission timer (first step of migration)."""
        self._rto_gen += 1
        self.rto_armed = False

    def _rto_fire(self, gen: int) -> None:
        if gen != self._rto_gen or not self.rto_armed:
            return
        if self.migrating:
            return
        head = self.write_queue.head()
        if head is None:
            if self.state == TCPState.SYN_SENT:
                self._send_ctl(TCPFlags(syn=True), seq=self.iss)
            elif self.state in (TCPState.FIN_WAIT_1, TCPState.LAST_ACK):
                self._send_ctl(TCPFlags(fin=True, ack=True), seq=seq_add(self.snd_nxt, -1))
            elif self.state == TCPState.SYN_RCVD:
                self._send_ctl(TCPFlags(syn=True, ack=True), seq=self.iss)
            else:
                self.rto_armed = False
                return
        else:
            head.retransmits += 1
            self.retransmit_count += 1
            self._send_data(head)
            # Loss response: collapse the congestion window.
            self.ssthresh = max(2 * MSS, self.cwnd // 2)
            self.cwnd = MSS
        self.rto = min(MAX_RTO, self.rto * 2)
        self._arm_rto()

    # ---------------------------------------------------------------- output
    def _build_packet(self, flags: TCPFlags, seq: int, payload: Any, size: int) -> Packet:
        assert self.local is not None and self.remote is not None
        pkt = Packet(
            src_ip=self.local.ip,
            dst_ip=self.remote.ip,
            proto=PROTO_TCP,
            sport=self.local.port,
            dport=self.remote.port,
            payload_size=size,
            payload=payload,
            tcp=TCPHeader(
                seq=seq,
                ack=self.rcv_nxt,
                flags=flags,
                window=self.rcv_wnd,
                ts_val=self.current_ts_val(),
                ts_ecr=self.ts_recent,
            ),
            sent_at=self.env.now,
        )
        if self.dst_entry is not None:
            pkt.dst_cache_ip = self.dst_entry.ip
        return pkt.seal()

    def _send_ctl(self, flags: TCPFlags, seq: int) -> None:
        self.stack.ip_output(self._build_packet(flags, seq, None, 0))

    def _send_data(self, skb: SKBuff) -> None:
        pkt = self._build_packet(TCPFlags(ack=True), skb.seq, skb.payload, skb.size)
        self.stack.ip_output(pkt)

    def __repr__(self) -> str:
        flow = f"{self.local}<->{self.remote}" if self.remote else f"{self.local}"
        return f"<TCPSocket {self.state} {flow}>"
