"""IP destination-cache entries.

Linux attaches a destination-cache entry to every outgoing packet,
inherited from the originating socket (Section V-D).  Address
translation that rewrites only the IP header leaves the old entry in
place, so the packet is still *physically* sent to the old destination —
the first of the two technical issues the paper reports.  The
translation filter therefore replaces the entry too.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..net import IPAddr

__all__ = ["DstCacheEntry"]

_dst_ids = itertools.count(1)


@dataclass
class DstCacheEntry:
    """Resolved next-hop/destination for a socket's outgoing packets."""

    ip: IPAddr
    entry_id: int = field(default_factory=lambda: next(_dst_ids))

    def clone_for(self, new_ip: IPAddr) -> "DstCacheEntry":
        """An accurate replacement entry pointing at the new destination."""
        return DstCacheEntry(ip=new_ip)
