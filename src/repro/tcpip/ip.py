"""The IP layer: receive/transmit paths with netfilter traversal.

Receive path (``ip_rcv``):  checksum verification → ``NF_INET_LOCAL_IN``
hooks (capture / incoming translation) → socket demultiplexing.  In
*cluster mode* (shared public IP) packets without a matching socket are
dropped silently — another node of the single-IP cluster owns them.

Transmit path (``ip_output``): ``NF_INET_LOCAL_OUT`` hooks (outgoing
translation) → route → interface.  ``ip_rcv_finish`` is the reinjection
entry point the capture hook's ``okfn()`` uses after migration
(Section V-B): it bypasses the LOCAL_IN chain, exactly like the real
``okfn`` continuation runs *after* the hook that stole the packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net import Interface, PROTO_TCP, PROTO_UDP, Packet
from ..oskern.netfilter import (
    NF_ACCEPT,
    NF_INET_LOCAL_IN,
    NF_INET_LOCAL_OUT,
    NF_STOLEN,
)

if TYPE_CHECKING:  # pragma: no cover
    from .stack import NetworkStack

__all__ = ["IPLayer"]


class IPLayer:
    """Per-node IP receive/transmit machinery."""

    def __init__(self, stack: "NetworkStack") -> None:
        self.stack = stack
        self.checksum_drops = 0
        self.no_socket_drops = 0
        self.hook_drops = 0
        self.hook_stolen = 0
        self.delivered = 0
        self.transmitted = 0

    # -- receive ----------------------------------------------------------
    def ip_rcv(self, pkt: Packet, iface: Interface) -> None:
        if not pkt.checksum_ok():
            self.checksum_drops += 1
            return
        verdict = self.stack.kernel.netfilter.run(NF_INET_LOCAL_IN, pkt)
        if verdict != NF_ACCEPT:
            if verdict == NF_STOLEN:
                self.hook_stolen += 1
            else:
                self.hook_drops += 1
            return
        self.ip_rcv_finish(pkt)

    def ip_rcv_finish(self, pkt: Packet) -> None:
        """Demultiplex to a socket; the ``okfn()`` reinjection target."""
        key = pkt.flow_key_at_receiver()
        tables = self.stack.tables
        if pkt.proto == PROTO_TCP:
            sock = tables.ehash_lookup(key)
            if sock is None:
                listener = tables.bhash_lookup(pkt.dst_ip, pkt.dport)
                if listener is not None and pkt.tcp is not None and pkt.tcp.flags.syn:
                    self.delivered += 1
                    listener.segment_arrives(pkt)
                    return
                # Cluster mode: silent drop — no RST, another node of the
                # single-IP cluster may own this flow.
                self.no_socket_drops += 1
                return
            self.delivered += 1
            sock.segment_arrives(pkt)
        elif pkt.proto == PROTO_UDP:
            sock = tables.udp_lookup(pkt.dst_ip, pkt.dport)
            if sock is None:
                self.no_socket_drops += 1
                return
            self.delivered += 1
            sock.datagram_arrives(pkt)
        else:  # pragma: no cover - ctl packets never reach the stack
            self.no_socket_drops += 1

    # -- transmit ------------------------------------------------------------
    def ip_output(self, pkt: Packet) -> None:
        verdict = self.stack.kernel.netfilter.run(NF_INET_LOCAL_OUT, pkt)
        if verdict != NF_ACCEPT:
            self.hook_drops += 1
            return
        # Physical egress follows the destination cache when attached.
        iface = self.stack.kernel.route(pkt.wire_dst)
        self.transmitted += 1
        iface.transmit(pkt)
