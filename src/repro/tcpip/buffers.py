"""Socket buffers (``sk_buff`` analogs) and the five TCP queues.

Section V-C.1 enumerates the queues socket migration must deal with:
*write* (outgoing, unacknowledged), *receive* (in-order, ready for the
application), *out-of-order*, plus *backlog* (packets arriving while the
socket is user-locked) and *prequeue* (Linux fast-path receive).  The
signal-based checkpoint guarantees the last two are empty at freeze time;
the first three are dumped and restored.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..des import Environment, Event
from ..net import Endpoint
from .seq import seq_add, seq_geq, seq_lt

__all__ = ["SKBuff", "WriteQueue", "ReceiveQueue", "OutOfOrderQueue"]

_skb_ids = itertools.count(1)


@dataclass
class SKBuff:
    """A buffered data segment.

    ``ts_jiffies`` is the node-local jiffies stamp recorded at
    transmission/reception — one of the fields that must be shifted by
    the source/destination jiffies delta on migration.
    """

    seq: int
    size: int
    payload: Any = None
    src: Optional[Endpoint] = None
    ts_jiffies: int = 0
    retransmits: int = 0
    skb_id: int = field(default_factory=lambda: next(_skb_ids))

    @property
    def end_seq(self) -> int:
        return seq_add(self.seq, self.size)

    def migrate_record(self) -> dict:
        """State captured when dumping this buffer for migration."""
        return {
            "seq": self.seq,
            "size": self.size,
            "payload": self.payload,
            "src": self.src,
            "ts_jiffies": self.ts_jiffies,
            "retransmits": self.retransmits,
        }

    @classmethod
    def from_record(cls, record: dict, jiffies_delta: int = 0) -> "SKBuff":
        """Rebuild on the destination, shifting the jiffies stamp."""
        return cls(
            seq=record["seq"],
            size=record["size"],
            payload=record["payload"],
            src=record["src"],
            ts_jiffies=record["ts_jiffies"] + jiffies_delta,
            retransmits=record["retransmits"],
        )


class WriteQueue:
    """Sent-but-unacknowledged segments, in sequence order."""

    def __init__(self) -> None:
        self._bufs: list[SKBuff] = []

    def append(self, skb: SKBuff) -> None:
        if self._bufs and seq_lt(skb.seq, self._bufs[-1].end_seq):
            raise ValueError("write queue must stay in sequence order")
        self._bufs.append(skb)

    def ack_up_to(self, ack_seq: int) -> list[SKBuff]:
        """Remove fully-acknowledged segments; returns them."""
        acked = []
        while self._bufs and seq_geq(ack_seq, self._bufs[0].end_seq):
            acked.append(self._bufs.pop(0))
        return acked

    def head(self) -> Optional[SKBuff]:
        return self._bufs[0] if self._bufs else None

    def __len__(self) -> int:
        return len(self._bufs)

    def __iter__(self) -> Iterator[SKBuff]:
        return iter(self._bufs)

    def bytes_in_flight(self) -> int:
        return sum(b.size for b in self._bufs)

    def clear(self) -> list[SKBuff]:
        bufs, self._bufs = self._bufs, []
        return bufs


class ReceiveQueue:
    """In-order data ready for the application, with blocking recv."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._bufs: list[SKBuff] = []
        self._readers: list[Event] = []

    def push(self, skb: SKBuff) -> None:
        self._bufs.append(skb)
        self._wake()

    def _wake(self) -> None:
        while self._readers and self._bufs:
            self._readers.pop(0).succeed(self._bufs.pop(0))

    def get(self) -> Event:
        """Event succeeding with the next buffered segment."""
        ev = Event(self.env)
        if self._bufs:
            ev.succeed(self._bufs.pop(0))
        else:
            self._readers.append(ev)
        return ev

    @property
    def has_waiting_reader(self) -> bool:
        return bool(self._readers)

    def __len__(self) -> int:
        return len(self._bufs)

    def __iter__(self) -> Iterator[SKBuff]:
        return iter(self._bufs)

    def clear(self) -> list[SKBuff]:
        bufs, self._bufs = self._bufs, []
        return bufs

    def restore(self, bufs: list[SKBuff]) -> None:
        """Re-insert migrated buffers ahead of anything new."""
        self._bufs = list(bufs) + self._bufs
        self._wake()


class OutOfOrderQueue:
    """Segments beyond ``rcv_nxt``, keyed and drained by sequence."""

    def __init__(self) -> None:
        self._bufs: dict[int, SKBuff] = {}

    def insert(self, skb: SKBuff) -> None:
        # Duplicate out-of-order arrivals are stored once (seq-keyed).
        self._bufs.setdefault(skb.seq, skb)

    def pop_in_order(self, rcv_nxt: int) -> list[SKBuff]:
        """Remove and return the contiguous run starting at rcv_nxt."""
        run = []
        while rcv_nxt in self._bufs:
            skb = self._bufs.pop(rcv_nxt)
            run.append(skb)
            rcv_nxt = skb.end_seq
        return run

    def __len__(self) -> int:
        return len(self._bufs)

    def __iter__(self) -> Iterator[SKBuff]:
        return iter(sorted(self._bufs.values(), key=lambda b: b.seq))

    def clear(self) -> list[SKBuff]:
        bufs = list(self)
        self._bufs.clear()
        return bufs
