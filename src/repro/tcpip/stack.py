"""Per-node network stack: socket tables + IP layer + socket factories."""

from __future__ import annotations

from typing import Any

from ..net import Interface, IPAddr, Packet
from .hashtables import SocketTables
from .ip import IPLayer
from .tcp import TCPSocket
from .udp import UDPSocket

__all__ = ["NetworkStack"]


class NetworkStack:
    """Everything TCP/IP on one node."""

    EPHEMERAL_BASE = 32768

    def __init__(self, kernel: Any) -> None:
        self.kernel = kernel
        self.env = kernel.env
        self.tables = SocketTables()
        self.ip = IPLayer(self)
        self._next_ephemeral: int | None = None
        self._ephemeral_base = self.EPHEMERAL_BASE
        self._ephemeral_span = 28000

    def _init_ephemeral_range(self) -> None:
        """Disjoint per-node ephemeral ranges on the cluster network.

        When a socket migrates, its local address is rewritten to the
        destination node but its *port* is kept — so two processes
        migrated from different nodes must never have been handed the
        same ephemeral port, or their rewritten in-cluster flows would
        collide in the destination's ``ehash``.  Cluster deployments
        avoid this by carving the ephemeral range per node (keyed here
        by the local address's last octet; up to 60 cluster hosts).
        """
        iface = self.kernel.local_iface
        if iface is not None:
            octet = int(iface.ip.value.rsplit(".", 1)[1])
            self._ephemeral_base = self.EPHEMERAL_BASE + (octet % 60) * 450
            self._ephemeral_span = 450
        self._next_ephemeral = self._ephemeral_base

    # -- socket factories ------------------------------------------------------
    def tcp_socket(self, proc: Any = None) -> TCPSocket:
        """Create a TCP socket, installing it in ``proc``'s FD table."""
        sock = TCPSocket(self, proc=proc)
        self._install_fd(proc, sock)
        return sock

    def udp_socket(self, proc: Any = None) -> UDPSocket:
        sock = UDPSocket(self, proc=proc)
        self._install_fd(proc, sock)
        return sock

    def _install_fd(self, proc: Any, sock: Any) -> None:
        if proc is not None:
            from ..oskern.fdtable import SocketFile

            proc.fdtable.install(SocketFile(socket=sock))

    # -- plumbing ----------------------------------------------------------------
    def alloc_ephemeral_port(self) -> int:
        if self._next_ephemeral is None:
            self._init_ephemeral_range()
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral >= self._ephemeral_base + self._ephemeral_span:
            self._next_ephemeral = self._ephemeral_base
        return port

    def queue_bytes(self) -> tuple[int, int, int]:
        """(send, receive, out-of-order) queue bytes summed over every
        established TCP socket — the node-level occupancy the telemetry
        samplers export (pull-based; nothing is tracked on data paths)."""
        send = recv = ooo = 0
        for sock in self.tables.ehash.values():
            send += sum(b.size for b in sock.write_queue)
            recv += sum(b.size for b in sock.receive_queue)
            ooo += sum(b.size for b in sock.ooo_queue)
        return send, recv, ooo

    def default_ip(self) -> IPAddr:
        """Address used for wildcard-ish binds: public if present."""
        k = self.kernel
        if k.public_iface is not None:
            return k.public_iface.ip
        if k.local_iface is not None:
            return k.local_iface.ip
        raise RuntimeError("stack has no interface")

    def ip_rcv(self, pkt: Packet, iface: Interface) -> None:
        self.ip.ip_rcv(pkt, iface)

    def ip_rcv_finish(self, pkt: Packet) -> None:
        self.ip.ip_rcv_finish(pkt)

    def ip_output(self, pkt: Packet) -> None:
        self.ip.ip_output(pkt)
