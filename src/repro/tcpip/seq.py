"""32-bit TCP sequence-number arithmetic (mod 2**32, signed compare)."""

from __future__ import annotations

__all__ = ["SEQ_MOD", "seq_add", "seq_sub", "seq_lt", "seq_leq", "seq_gt", "seq_geq", "seq_between"]

SEQ_MOD = 1 << 32
_HALF = 1 << 31


def seq_add(a: int, n: int) -> int:
    """a + n (mod 2**32)."""
    return (a + n) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """Signed distance a - b in [-2**31, 2**31)."""
    d = (a - b) % SEQ_MOD
    return d - SEQ_MOD if d >= _HALF else d


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_leq(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_sub(a, b) > 0


def seq_geq(a: int, b: int) -> bool:
    return seq_sub(a, b) >= 0


def seq_between(seq: int, lo: int, hi: int) -> bool:
    """lo <= seq < hi in sequence space."""
    return seq_leq(lo, seq) and seq_lt(seq, hi)
